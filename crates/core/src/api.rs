//! The serializable analysis API: one request/response surface shared by
//! the `rtpcheck` CLI (`--format json`), the `rtpserved` JSON-RPC daemon,
//! and library callers that need wire-stable shapes.
//!
//! Before this module existed the workspace had three divergent notions of
//! "the result of an analysis": the `Analyzer` return types
//! ([`crate::IndependenceAnalysis`], [`crate::IndependenceMatrix`], …), the
//! hand-rolled JSON the CLI printed, and whatever an embedding service
//! would have invented. The types here collapse them into one layer:
//!
//! * [`Json`] — a small self-contained JSON document model (this build is
//!   offline and vendors no serde); parses, renders compactly for wire
//!   framing, and pretty-prints for CLI output;
//! * [`IndependenceResponse`], [`MatrixResponse`], [`FdCheckResponse`],
//!   [`MinimizeResponse`] — the four analysis result shapes, each built
//!   *from* the corresponding engine result and rendered *to* [`Json`], so
//!   CLI JSON and wire protocol cannot drift apart;
//! * [`PROTOCOL_VERSION`] — the version string of this surface, exchanged
//!   in the `rtpserved` `initialize` handshake ([`protocol_compatible`]).
//!
//! Field names are part of the contract: they are what `--format json`
//! prints and what the JSON-RPC methods return, and they only change with
//! a [`PROTOCOL_VERSION`] bump.
//!
//! ```
//! use regtree_core::api::Json;
//!
//! let v = Json::parse(r#"{"pairs": 4, "fds": ["a", "b"]}"#).unwrap();
//! assert_eq!(v.get("pairs").and_then(Json::as_u64), Some(4));
//! assert_eq!(v.get("fds").unwrap().as_array().unwrap().len(), 2);
//! assert_eq!(v.to_compact(), r#"{"pairs":4,"fds":["a","b"]}"#);
//! ```

use std::fmt::Write as _;

use regtree_alphabet::Alphabet;
use regtree_pattern::parse_corexpath;
use regtree_runtime::{EventKind, RunMetrics, SpanKind, TraceSummary};
use regtree_xml::{parse_document, TreeSpec};

use crate::fdset::{FdSet, Minimization};
use crate::independence::IndependenceAnalysis;
use crate::matrix::{CellProvenance, IndependenceMatrix};
use crate::satisfy::FdOutcome;
use crate::update::{Update, UpdateClass, UpdateOp};

/// Version of the serializable request/response surface. Exchanged in the
/// `rtpserved` `initialize` handshake; a client built against an
/// incompatible major version is rejected with a typed error instead of
/// silently mis-parsing shapes.
pub const PROTOCOL_VERSION: &str = "1.0";

/// Are two protocol versions wire-compatible? (Same major component;
/// minor additions are backward compatible by construction — new optional
/// fields only.)
pub fn protocol_compatible(client: &str, server: &str) -> bool {
    let major = |v: &str| v.split('.').next().map(str::to_owned);
    major(client).is_some() && major(client) == major(server)
}

/// A JSON document: the minimal self-contained value model the API layer
/// serializes through. Numbers keep their source lexeme (`Json::Num`) so
/// `u64` counters round-trip exactly without a float detour.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its canonical textual lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from any unsigned counter.
    pub fn u64(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// A number from a `usize` count.
    pub fn usize(n: usize) -> Json {
        Json::Num(n.to_string())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// `Str` for `Some`, `Null` for `None`.
    pub fn opt_str(s: Option<impl Into<String>>) -> Json {
        match s {
            Some(s) => Json::Str(s.into()),
            None => Json::Null,
        }
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an integral `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an `Obj`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Is this `Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders without any whitespace — the wire form the JSON-RPC framing
    /// sends (`Content-Length` counts these bytes).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty-prints with two-space indentation (the `--format json` form).
    /// Arrays whose elements are all scalars render inline (`["a", "b"]`);
    /// everything composite gets one line per entry.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                if items.iter().all(Json::is_scalar) {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write_compact(out);
                    }
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        out.push_str(if i > 0 { ",\n" } else { "\n" });
                        indent(out, depth + 1);
                        v.write_pretty(out, depth + 1);
                    }
                    out.push('\n');
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn is_scalar(&self) -> bool {
        !matches!(self, Json::Arr(_) | Json::Obj(_))
    }

    /// Parses one JSON document (trailing content is an error).
    ///
    /// ```
    /// use regtree_core::api::Json;
    /// assert!(Json::parse("{\"a\": [1, 2.5e3, null, \"x\\n\"]}").is_ok());
    /// assert!(Json::parse("{\"a\": }").is_err());
    /// assert!(Json::parse("[1] trailing").is_err());
    /// ```
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser over raw bytes. Strings must be valid
/// UTF-8 after unescaping (the input already is, being `&str`).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                let mut members = Vec::new();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    members.push((key, v));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                let mut items = Vec::new();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let s = p.pos;
            while matches!(p.bytes.get(p.pos), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        let int_start = self.pos;
        if !digits(self) {
            return Err(format!("invalid number at byte {start}"));
        }
        // JSON forbids leading zeros: "0" is fine, "01" is not.
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(format!("leading zero in number at byte {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number lexeme is ASCII")
            .to_string();
        Ok(Json::Num(lexeme))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogate pairs: decode the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 5..self.pos + 7) == Some(b"\\u") {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 7..self.pos + 11)
                                        .ok_or("truncated surrogate pair")?;
                                    let lo = u32::from_str_radix(
                                        std::str::from_utf8(lo_hex).map_err(|_| "bad surrogate")?,
                                        16,
                                    )
                                    .map_err(|e| format!("bad surrogate: {e}"))?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid surrogate pair".into());
                                    }
                                    self.pos += 6;
                                    char::from_u32(
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00),
                                    )
                                    .ok_or("invalid surrogate pair")?
                                } else {
                                    return Err("unpaired surrogate".into());
                                }
                            } else {
                                char::from_u32(code).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // continuation bytes are well-formed).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// [`RunMetrics`] as the stable `metrics` object every response embeds
/// under `--stats` / on the wire.
pub fn metrics_to_json(m: &RunMetrics) -> Json {
    Json::Obj(vec![
        ("states_interned".into(), Json::u64(m.states_interned)),
        ("transitions_fired".into(), Json::u64(m.transitions_fired)),
        (
            "guard_intersections".into(),
            Json::u64(m.guard_intersections),
        ),
        ("dfa_steps".into(), Json::u64(m.dfa_steps)),
        ("frontier_pushes".into(), Json::u64(m.frontier_pushes)),
        ("memo_entries".into(), Json::u64(m.memo_entries)),
        ("memo_hits".into(), Json::u64(m.memo_hits)),
        ("verdicts_reused".into(), Json::u64(m.verdicts_reused)),
        ("deltas_applied".into(), Json::u64(m.deltas_applied)),
        ("rechecks_localized".into(), Json::u64(m.rechecks_localized)),
        ("rechecks_full".into(), Json::u64(m.rechecks_full)),
        ("compile_nanos".into(), Json::u64(m.compile_nanos)),
        ("search_nanos".into(), Json::u64(m.search_nanos)),
    ])
}

/// [`TraceSummary`] as the stable `phases` object (`--stats-verbose`).
/// Every span and event kind is present — zero counts included — so the
/// shape is stable for downstream parsers.
pub fn phases_to_json(s: &TraceSummary) -> Json {
    let spans = SpanKind::ALL
        .into_iter()
        .map(|kind| {
            let stats = s.span(kind);
            (
                kind.name().to_string(),
                Json::Obj(vec![
                    ("count".into(), Json::u64(stats.count)),
                    ("total_nanos".into(), Json::u64(stats.total_nanos)),
                ]),
            )
        })
        .collect();
    let events = EventKind::ALL
        .into_iter()
        .map(|kind| (kind.name().to_string(), Json::u64(s.event_count(kind))))
        .collect();
    Json::Obj(vec![
        ("spans".into(), Json::Obj(spans)),
        ("events".into(), Json::Obj(events)),
    ])
}

/// Appends the optional `metrics`/`phases` members shared by all analysis
/// responses.
fn push_extras(
    members: &mut Vec<(String, Json)>,
    metrics: &Option<RunMetrics>,
    phases: &Option<TraceSummary>,
) {
    if let Some(m) = metrics {
        members.push(("metrics".into(), metrics_to_json(m)));
    }
    if let Some(s) = phases {
        members.push(("phases".into(), phases_to_json(s)));
    }
}

/// Result of one `pattern/parse` (and of `rtpcheck pattern parse
/// --format json`): the canonical form plus the compiled template, so
/// clients can explain what a textual pattern means without re-implementing
/// the grammar.
#[derive(Clone, Debug)]
pub struct PatternParseResponse {
    /// The input as given.
    pub source: String,
    /// The canonical printed form (`parse ∘ print = id`).
    pub canonical: String,
    /// Number of nodes of the compiled template.
    pub template_nodes: usize,
    /// Indices of the selected tuple within the template.
    pub selected: Vec<usize>,
    /// Human-readable template structure (indented edge list).
    pub sketch: String,
    /// Value tests the template cannot express; evaluation applies them as
    /// a mapping filter. Pairs of (template node index, required string
    /// value).
    pub value_tests: Vec<(usize, String)>,
}

impl PatternParseResponse {
    /// Builds the response from a parsed-and-compiled pattern.
    pub fn from_compiled(source: &str, compiled: &regtree_pattern::CompiledPattern) -> Self {
        let canonical = compiled.ast().to_text();
        let template = compiled.pattern().template();
        PatternParseResponse {
            source: source.to_string(),
            canonical,
            template_nodes: template.len(),
            selected: compiled
                .pattern()
                .selected()
                .iter()
                .map(|n| n.index())
                .collect(),
            sketch: template.sketch(),
            value_tests: compiled
                .value_tests()
                .iter()
                .map(|(n, v)| (n.index(), v.clone()))
                .collect(),
        }
    }

    /// The stable JSON shape.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("source".into(), Json::str(&self.source)),
            ("canonical".into(), Json::str(&self.canonical)),
            ("template_nodes".into(), Json::usize(self.template_nodes)),
            (
                "selected".into(),
                Json::Arr(self.selected.iter().map(|&i| Json::usize(i)).collect()),
            ),
            ("sketch".into(), Json::str(&self.sketch)),
            (
                "value_tests".into(),
                Json::Arr(
                    self.value_tests
                        .iter()
                        .map(|(n, v)| {
                            Json::Obj(vec![
                                ("node".into(), Json::usize(*n)),
                                ("value".into(), Json::str(v)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Result of one `independence/check` (and of `rtpcheck independence
/// --format json`).
#[derive(Clone, Debug)]
pub struct IndependenceResponse {
    /// Did the criterion prove independence?
    pub independent: bool,
    /// Machine name of the exhausted resource, when the run was cut short.
    pub exhausted: Option<String>,
    /// States of the combined (pre-schema) IC automaton.
    pub ic_states: usize,
    /// Size of the full product automaton.
    pub automaton_size: usize,
    /// Product states actually explored by the emptiness engine.
    pub explored_states: usize,
    /// Serialized witness document, when `L` was proven nonempty.
    pub witness_xml: Option<String>,
    /// Work counters, when requested.
    pub metrics: Option<RunMetrics>,
    /// Per-phase wall-time breakdown, when requested.
    pub phases: Option<TraceSummary>,
}

impl IndependenceResponse {
    /// Builds the response from an engine result. The witness document (if
    /// any) must be serialized by the caller, which owns the serialization
    /// options; `metrics`/`phases` start empty — callers opt in.
    pub fn from_analysis(a: &IndependenceAnalysis, witness_xml: Option<String>) -> Self {
        IndependenceResponse {
            independent: a.verdict.is_independent(),
            exhausted: a.verdict.exhausted().map(|r| r.name().to_string()),
            ic_states: a.ic_states,
            automaton_size: a.automaton_size,
            explored_states: a.explored_states,
            witness_xml,
            metrics: None,
            phases: None,
        }
    }

    /// The stable JSON shape.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("independent".into(), Json::Bool(self.independent)),
            ("exhausted".into(), Json::opt_str(self.exhausted.clone())),
            ("ic_states".into(), Json::usize(self.ic_states)),
            ("automaton_size".into(), Json::usize(self.automaton_size)),
            ("explored_states".into(), Json::usize(self.explored_states)),
            (
                "witness_xml".into(),
                Json::opt_str(self.witness_xml.clone()),
            ),
        ];
        push_extras(&mut members, &self.metrics, &self.phases);
        Json::Obj(members)
    }
}

/// One cell of a [`MatrixResponse`].
#[derive(Clone, Debug)]
pub struct MatrixCellResponse {
    /// Row (FD) name.
    pub fd: String,
    /// Column (update-class) name.
    pub update: String,
    /// `"independent"`, `"recheck"`, `"unknown"`, or `"implied"`.
    pub verdict: String,
    /// Machine name of the exhausted resource, when the cell was cut short.
    pub exhausted: Option<String>,
    /// `"computed"`, `"implied"`, or `"reused"`.
    pub provenance: String,
    /// Kept FD names implying this row (when `provenance == "implied"`).
    pub implied_by: Option<Vec<String>>,
    /// FD name the verdict was reused from (when `provenance == "reused"`).
    pub reused_from: Option<String>,
    /// Product states the engine explored for this cell.
    pub explored_states: usize,
    /// Full product size of this cell.
    pub automaton_size: usize,
}

impl MatrixCellResponse {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("fd".into(), Json::str(&self.fd)),
            ("update".into(), Json::str(&self.update)),
            ("verdict".into(), Json::str(&self.verdict)),
            ("exhausted".into(), Json::opt_str(self.exhausted.clone())),
            ("provenance".into(), Json::str(&self.provenance)),
        ];
        if let Some(by) = &self.implied_by {
            members.push((
                "implied_by".into(),
                Json::Arr(by.iter().map(Json::str).collect()),
            ));
        }
        if let Some(from) = &self.reused_from {
            members.push(("reused_from".into(), Json::str(from)));
        }
        members.push(("explored_states".into(), Json::usize(self.explored_states)));
        members.push(("automaton_size".into(), Json::usize(self.automaton_size)));
        Json::Obj(members)
    }
}

/// Result of one `independence/matrix` (and of `rtpcheck
/// independence-matrix --format json`).
#[derive(Clone, Debug)]
pub struct MatrixResponse {
    /// Row (FD) names.
    pub fds: Vec<String>,
    /// Column (update-class) names.
    pub updates: Vec<String>,
    /// All cells, row-major.
    pub cells: Vec<MatrixCellResponse>,
    /// Total `(fd, update)` pairs.
    pub pairs: usize,
    /// Provably independent pairs.
    pub independent_pairs: usize,
    /// Pairs that must be rechecked after their update class runs.
    pub recheck_pairs: usize,
    /// Pairs whose run was cut short by a budget.
    pub exhausted_pairs: usize,
    /// Cells the emptiness engine actually ran for.
    pub computed_cells: usize,
    /// Cells whose verdict was reused from another row.
    pub reused_cells: usize,
    /// Rows dropped as implied by the rest of the FD set.
    pub implied_rows: usize,
    /// Merged work counters, when requested.
    pub metrics: Option<RunMetrics>,
    /// Per-phase wall-time breakdown, when requested.
    pub phases: Option<TraceSummary>,
}

impl MatrixResponse {
    /// Builds the response from an engine matrix.
    pub fn from_matrix(m: &IndependenceMatrix) -> Self {
        let cells = m
            .cells
            .iter()
            .map(|cell| {
                let verdict = match &cell.provenance {
                    // Implied rows carry no criterion verdict.
                    CellProvenance::ImpliedRow { .. } => "implied",
                    _ if cell.verdict.is_independent() => "independent",
                    _ if cell.verdict.exhausted().is_some() => "unknown",
                    _ => "recheck",
                };
                let (provenance, implied_by, reused_from) = match &cell.provenance {
                    CellProvenance::Computed => ("computed", None, None),
                    CellProvenance::ImpliedRow { by } => (
                        "implied",
                        Some(by.iter().map(|&j| m.fd_names[j].clone()).collect()),
                        None,
                    ),
                    CellProvenance::ReusedFrom { fd } => {
                        ("reused", None, Some(m.fd_names[*fd].clone()))
                    }
                };
                MatrixCellResponse {
                    fd: m.fd_names[cell.fd].clone(),
                    update: m.class_names[cell.class].clone(),
                    verdict: verdict.to_string(),
                    exhausted: cell.verdict.exhausted().map(|r| r.name().to_string()),
                    provenance: provenance.to_string(),
                    implied_by,
                    reused_from,
                    explored_states: cell.explored_states,
                    automaton_size: cell.automaton_size,
                }
            })
            .collect();
        MatrixResponse {
            fds: m.fd_names.clone(),
            updates: m.class_names.clone(),
            cells,
            pairs: m.fd_names.len() * m.class_names.len(),
            independent_pairs: m.independent_count(),
            recheck_pairs: m.recheck_count(),
            exhausted_pairs: m.exhausted_count(),
            computed_cells: m.computed_count(),
            reused_cells: m.reused_count(),
            implied_rows: m.implied_row_count(),
            metrics: None,
            phases: None,
        }
    }

    /// The stable JSON shape.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            (
                "fds".into(),
                Json::Arr(self.fds.iter().map(Json::str).collect()),
            ),
            (
                "updates".into(),
                Json::Arr(self.updates.iter().map(Json::str).collect()),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(MatrixCellResponse::to_json).collect()),
            ),
            ("pairs".into(), Json::usize(self.pairs)),
            (
                "independent_pairs".into(),
                Json::usize(self.independent_pairs),
            ),
            ("recheck_pairs".into(), Json::usize(self.recheck_pairs)),
            ("exhausted_pairs".into(), Json::usize(self.exhausted_pairs)),
            ("computed_cells".into(), Json::usize(self.computed_cells)),
            ("reused_cells".into(), Json::usize(self.reused_cells)),
            ("implied_rows".into(), Json::usize(self.implied_rows)),
        ];
        push_extras(&mut members, &self.metrics, &self.phases);
        Json::Obj(members)
    }
}

/// One FD's outcome within a [`FdCheckResponse`] document entry.
#[derive(Clone, Debug)]
pub struct FdCheckOutcome {
    /// FD name.
    pub fd: String,
    /// `"satisfied"`, `"violated"`, or `"unknown"`.
    pub outcome: String,
    /// Machine name of the exhausted resource, for `"unknown"` outcomes.
    pub exhausted: Option<String>,
    /// Human-readable violation description, for `"violated"` outcomes.
    pub violation: Option<String>,
}

impl FdCheckOutcome {
    /// Builds the outcome entry from an engine outcome. `violation` is the
    /// caller-rendered witness description (it needs the document).
    pub fn from_outcome(name: &str, outcome: &FdOutcome, violation: Option<String>) -> Self {
        let (kind, exhausted) = match outcome {
            FdOutcome::Satisfied => ("satisfied", None),
            FdOutcome::Violated(_) => ("violated", None),
            FdOutcome::Unknown { exhausted, .. } => ("unknown", Some(exhausted.name().to_string())),
        };
        FdCheckOutcome {
            fd: name.to_string(),
            outcome: kind.to_string(),
            exhausted,
            violation,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("fd".into(), Json::str(&self.fd)),
            ("outcome".into(), Json::str(&self.outcome)),
            ("exhausted".into(), Json::opt_str(self.exhausted.clone())),
            ("violation".into(), Json::opt_str(self.violation.clone())),
        ])
    }
}

/// Per-document check list within a [`FdCheckResponse`].
#[derive(Clone, Debug)]
pub struct DocumentChecks {
    /// Document path (CLI) or session document name (daemon).
    pub path: String,
    /// One outcome per FD, in input order.
    pub checks: Vec<FdCheckOutcome>,
}

impl DocumentChecks {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("path".into(), Json::str(&self.path)),
            (
                "checks".into(),
                Json::Arr(self.checks.iter().map(FdCheckOutcome::to_json).collect()),
            ),
        ])
    }
}

/// Result of one `fd/check` (and of `rtpcheck fd-check --format json`).
#[derive(Clone, Debug)]
pub struct FdCheckResponse {
    /// One entry per checked document.
    pub documents: Vec<DocumentChecks>,
    /// Did every FD hold on every document (no violations, no unknowns)?
    pub all_satisfied: bool,
    /// Was any outcome cut short by a budget?
    pub exhausted: bool,
    /// Merged work counters, when requested.
    pub metrics: Option<RunMetrics>,
    /// Per-phase wall-time breakdown, when requested.
    pub phases: Option<TraceSummary>,
}

impl FdCheckResponse {
    /// Derives the aggregate flags from the per-document outcomes.
    pub fn from_documents(documents: Vec<DocumentChecks>) -> Self {
        let mut all_satisfied = true;
        let mut exhausted = false;
        for doc in &documents {
            for check in &doc.checks {
                if check.outcome != "satisfied" {
                    all_satisfied = false;
                }
                if check.outcome == "unknown" {
                    exhausted = true;
                }
            }
        }
        FdCheckResponse {
            documents,
            all_satisfied,
            exhausted,
            metrics: None,
            phases: None,
        }
    }

    /// The stable JSON shape.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            (
                "documents".into(),
                Json::Arr(self.documents.iter().map(DocumentChecks::to_json).collect()),
            ),
            ("all_satisfied".into(), Json::Bool(self.all_satisfied)),
            ("exhausted".into(), Json::Bool(self.exhausted)),
        ];
        push_extras(&mut members, &self.metrics, &self.phases);
        Json::Obj(members)
    }
}

/// Parses one update request object into an executable [`Update`] — the
/// wire shape consumed by `rtpcheck fd-check --updates` (one object per
/// JSONL line) and the `document/update` RPC:
///
/// ```json
/// {"select": "/session/candidate/exam/rank", "op": "set_text",
///  "value": "9", "first_only": true}
/// ```
///
/// * `select` — an absolute CoreXPath expression naming the updated nodes;
/// * `op` — `replace` | `append_child` | `prepend_child` | `delete` |
///   `set_text`;
/// * `xml` — the replacement/child subtree, for the first three ops;
/// * `value` — the new string value, for `set_text`;
/// * `first_only` — apply to the first selected node only (optional,
///   default `false`).
pub fn parse_update_json(alphabet: &Alphabet, json: &Json) -> Result<Update, String> {
    let select = json
        .get("select")
        .and_then(Json::as_str)
        .ok_or("update needs a 'select' CoreXPath string")?;
    let pattern = parse_corexpath(alphabet, select).map_err(|e| format!("bad 'select': {e}"))?;
    let class = UpdateClass::new(pattern).map_err(|e| format!("bad 'select': {e}"))?;

    let spec = |key: &str| -> Result<TreeSpec, String> {
        let xml = json
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("op needs an '{key}' subtree string"))?;
        let doc = parse_document(alphabet, xml).map_err(|e| format!("bad '{key}': {e}"))?;
        let tops = doc.children(doc.root());
        match tops {
            [single] => Ok(TreeSpec::from_document(&doc, *single)),
            _ => Err(format!(
                "'{key}' must contain exactly one top-level element"
            )),
        }
    };

    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or("update needs an 'op' string")?;
    let op = match op {
        "replace" => UpdateOp::Replace(spec("xml")?),
        "append_child" => UpdateOp::AppendChild(spec("xml")?),
        "prepend_child" => UpdateOp::PrependChild(spec("xml")?),
        "delete" => UpdateOp::Delete,
        "set_text" => {
            let value = json
                .get("value")
                .and_then(Json::as_str)
                .ok_or("set_text needs a 'value' string")?;
            UpdateOp::SetText(value.to_string())
        }
        other => {
            return Err(format!(
                "unknown op '{other}' (expected replace | append_child | prepend_child | \
                 delete | set_text)"
            ))
        }
    };
    let op = match json.get("first_only").and_then(Json::as_bool) {
        Some(true) => UpdateOp::FirstOnly(Box::new(op)),
        _ => op,
    };
    Ok(Update::new(class, op))
}

/// One FD's scope + outcome within an [`UpdateResponse`].
#[derive(Clone, Debug)]
pub struct UpdateCheckEntry {
    /// FD name.
    pub fd: String,
    /// `"unaffected"` | `"localized"` | `"global"` — how far the recheck
    /// reached.
    pub scope: String,
    /// The verdict after the update (same vocabulary as
    /// [`FdCheckOutcome`]).
    pub check: FdCheckOutcome,
}

impl UpdateCheckEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("fd".into(), Json::str(&self.fd)),
            ("scope".into(), Json::str(&self.scope)),
            ("check".into(), self.check.to_json()),
        ])
    }
}

/// Result of one `document/update` (and of each JSONL line processed by
/// `rtpcheck fd-check --updates`).
#[derive(Clone, Debug)]
pub struct UpdateResponse {
    /// Document name/path the update was applied to.
    pub path: String,
    /// Version counter after this update.
    pub version: u64,
    /// Number of nodes the update selected and edited.
    pub touched: usize,
    /// Per FD (input order): recheck scope and verdict.
    pub checks: Vec<UpdateCheckEntry>,
    /// Did every FD hold after the update?
    pub all_satisfied: bool,
    /// Merged work counters, when requested.
    pub metrics: Option<RunMetrics>,
    /// Per-phase wall-time breakdown, when requested.
    pub phases: Option<TraceSummary>,
}

impl UpdateResponse {
    /// The stable JSON shape.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("path".into(), Json::str(&self.path)),
            ("version".into(), Json::u64(self.version)),
            ("touched".into(), Json::usize(self.touched)),
            (
                "checks".into(),
                Json::Arr(self.checks.iter().map(UpdateCheckEntry::to_json).collect()),
            ),
            ("all_satisfied".into(), Json::Bool(self.all_satisfied)),
        ];
        push_extras(&mut members, &self.metrics, &self.phases);
        Json::Obj(members)
    }
}

/// The wire name of a recheck scope.
pub fn scope_name(scope: crate::incremental::RecheckScope) -> &'static str {
    match scope {
        crate::incremental::RecheckScope::Unaffected => "unaffected",
        crate::incremental::RecheckScope::Localized => "localized",
        crate::incremental::RecheckScope::Global => "global",
    }
}

/// One dropped FD within a [`MinimizeResponse`].
#[derive(Clone, Debug)]
pub struct DroppedFdResponse {
    /// Name of the dropped FD.
    pub fd: String,
    /// Names of the kept FDs implying it (empty for trivial FDs).
    pub implied_by: Vec<String>,
}

impl DroppedFdResponse {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("fd".into(), Json::str(&self.fd)),
            (
                "implied_by".into(),
                Json::Arr(self.implied_by.iter().map(Json::str).collect()),
            ),
        ])
    }
}

/// Result of one `fd/minimize` (and of `rtpcheck fds minimize --format
/// json`).
#[derive(Clone, Debug)]
pub struct MinimizeResponse {
    /// Names of the FDs forming the irredundant core.
    pub kept: Vec<String>,
    /// Dropped FDs with provenance.
    pub dropped: Vec<DroppedFdResponse>,
    /// Total FDs in the input set.
    pub total: usize,
    /// Did the implication closure run to completion? A `false` here means
    /// the recorded drops are proven but further drops may exist.
    pub complete: bool,
    /// Machine name of the exhausted resource, when incomplete.
    pub exhausted: Option<String>,
}

impl MinimizeResponse {
    /// Builds the response from a minimization over `set`.
    pub fn from_minimization(min: &Minimization, set: &FdSet) -> Self {
        MinimizeResponse {
            kept: min.kept.iter().map(|&k| set.name(k).to_string()).collect(),
            dropped: min
                .dropped
                .iter()
                .map(|d| DroppedFdResponse {
                    fd: set.name(d.index).to_string(),
                    implied_by: d.by.iter().map(|&j| set.name(j).to_string()).collect(),
                })
                .collect(),
            total: set.len(),
            complete: min.is_complete(),
            exhausted: min.exhausted.map(|r| r.name().to_string()),
        }
    }

    /// The stable JSON shape.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "kept".into(),
                Json::Arr(self.kept.iter().map(Json::str).collect()),
            ),
            (
                "dropped".into(),
                Json::Arr(
                    self.dropped
                        .iter()
                        .map(DroppedFdResponse::to_json)
                        .collect(),
                ),
            ),
            ("total".into(), Json::usize(self.total)),
            ("complete".into(), Json::Bool(self.complete)),
            ("exhausted".into(), Json::opt_str(self.exhausted.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact() {
        let src = r#"{"a":[1,2.5e3,null,"x\n"],"b":{"c":true},"d":-7}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_compact(), src);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("01").is_err()); // JSON forbids leading zeros
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = Json::parse(r#""tab\t nl\n quote\" ué pair😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "tab\t nl\n quote\" ué pair😀");
        let rendered = Json::str("tab\t nl\n \"q\"").to_compact();
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str().unwrap(),
            "tab\t nl\n \"q\""
        );
    }

    #[test]
    fn pretty_inlines_scalar_arrays() {
        let v = Json::Obj(vec![
            (
                "kept".into(),
                Json::Arr(vec![Json::str("base"), Json::str("other")]),
            ),
            ("n".into(), Json::u64(2)),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let pretty = v.to_pretty();
        assert!(
            pretty.contains("\"kept\": [\"base\", \"other\"]"),
            "{pretty}"
        );
        assert!(pretty.contains("\"empty\": []"), "{pretty}");
        assert!(Json::parse(&pretty).is_ok());
    }

    #[test]
    fn broken_surrogate_escapes_are_rejected() {
        // A high surrogate must be followed by a \u-escaped low surrogate;
        // anything else is invalid JSON and must Err without panicking.
        let esc = |hex: &str| format!("{}u{}", '\x5c', hex);
        for second in ["0041", "E000", "D800"] {
            let src = format!("\"{}{}\"", esc("D800"), esc(second));
            let r = Json::parse(&src);
            assert!(r.is_err(), "src={src} got: {r:?}");
        }
    }

    #[test]
    fn protocol_versions() {
        assert!(protocol_compatible(PROTOCOL_VERSION, PROTOCOL_VERSION));
        assert!(protocol_compatible("1.3", "1.0"));
        assert!(!protocol_compatible("2.0", "1.0"));
    }

    #[test]
    fn update_json_round_trips_through_apply() {
        use regtree_alphabet::Alphabet;

        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            "<session><candidate><exam><rank>1</rank></exam></candidate>\
             <candidate><exam><rank>1</rank></exam></candidate></session>",
        )
        .unwrap();

        let line = r#"{"select": "/session/candidate/exam/rank",
                       "op": "set_text", "value": "9", "first_only": true}"#;
        let up = parse_update_json(&a, &Json::parse(line).unwrap()).unwrap();
        let after = up.apply_cloned(&doc).unwrap();
        let xml = regtree_xml::to_xml(&after);
        assert!(
            xml.contains("<rank>9</rank>") && xml.contains("<rank>1</rank>"),
            "{xml}"
        );

        let line = r#"{"select": "/session/candidate/exam",
                       "op": "append_child", "xml": "<note>ok</note>"}"#;
        let up = parse_update_json(&a, &Json::parse(line).unwrap()).unwrap();
        assert_eq!(up.apply_cloned(&doc).unwrap().len(), doc.len() + 4);

        let line = r#"{"select": "/session/candidate", "op": "delete", "first_only": true}"#;
        let up = parse_update_json(&a, &Json::parse(line).unwrap()).unwrap();
        let after = up.apply_cloned(&doc).unwrap();
        assert!(after.len() < doc.len());
    }

    #[test]
    fn update_json_rejects_malformed_requests() {
        use regtree_alphabet::Alphabet;

        let a = Alphabet::new();
        for (line, needle) in [
            (r#"{"op": "delete"}"#, "'select'"),
            (r#"{"select": "/a"}"#, "'op'"),
            (r#"{"select": "/a", "op": "explode"}"#, "unknown op"),
            (r#"{"select": "/a", "op": "set_text"}"#, "'value'"),
            (r#"{"select": "/a", "op": "replace"}"#, "'xml'"),
            (
                r#"{"select": "/a", "op": "replace", "xml": "<b/><c/>"}"#,
                "one top-level",
            ),
            (r#"{"select": "a", "op": "delete"}"#, "select"),
        ] {
            let err = parse_update_json(&a, &Json::parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "line={line} err={err}");
        }
    }

    #[test]
    fn metrics_shape_is_stable() {
        let m = RunMetrics {
            states_interned: 3,
            ..RunMetrics::default()
        };
        let json = metrics_to_json(&m);
        assert_eq!(json.get("states_interned").and_then(Json::as_u64), Some(3));
        assert_eq!(json.as_object().unwrap().len(), 13);
    }
}
