//! The [`Analyzer`] façade: one reusable handle over the whole analysis
//! surface — independence checks, batch matrices, and FD satisfaction —
//! with shared compiled state, resource budgets, metrics, and cancellation.
//!
//! Standalone entry points would recompile the schema hedge automaton and
//! the pattern automata on every call. An `Analyzer` is built once per
//! (schema, limits) configuration and amortizes:
//!
//! * the compiled schema automaton (`A_S` of Proposition 3), compiled at
//!   build time;
//! * pattern automata, cached by structural template sketch + selected
//!   tuple + marking flag, so repeated queries over the same FD or update
//!   class hit the cache — including across matrix calls;
//! * the [`RunLimits`] every run is governed by, with an optional
//!   [`CancelToken`] for early abort of batch work.
//!
//! ```
//! use regtree_core::{Analyzer, FdBuilder, update_class_from_edges};
//! use regtree_alphabet::Alphabet;
//!
//! let a = Alphabet::new();
//! let fd = FdBuilder::new(a.clone())
//!     .context("catalog")
//!     .condition("item/sku")
//!     .target("item/price")
//!     .build()
//!     .unwrap();
//! let class = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
//! let analyzer = Analyzer::builder().build();
//! let analysis = analyzer.independence(&fd, &class);
//! assert!(analysis.verdict.is_independent());
//! assert!(analysis.metrics.states_interned > 0);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use regtree_hedge::{HedgeAutomaton, Schema};
use regtree_pattern::{compile_pattern, PatternAutomaton, RegularTreePattern};
use regtree_runtime::{Budget, CancelToken, RunLimits, SpanKind, Stopwatch, TraceHandle, Tracer};
use regtree_xml::{Document, VersionedDocument};

use crate::error::Error;
use crate::fd::Fd;
use crate::fdset::FdSet;
use crate::incremental::IncrementalChecker;
use crate::independence::{check_independence_governed, IndependenceAnalysis};
use crate::matrix::{analyze_matrix_governed, analyze_matrix_pruned_governed, IndependenceMatrix};
use crate::satisfy::{check_fds_governed, FdBatchReport};
use crate::update::UpdateClass;

/// Cache key of one compiled pattern automaton: the deterministic template
/// sketch (labels + edge regexes + shape), the selected tuple, and whether
/// the compilation marks the FD region.
type PatternKey = (String, Vec<u32>, bool);

/// Builder for [`Analyzer`].
#[derive(Default)]
pub struct AnalyzerBuilder {
    schema: Option<Schema>,
    limits: RunLimits,
    cancel: Option<CancelToken>,
    tracer: Option<Arc<dyn Tracer>>,
}

impl AnalyzerBuilder {
    /// A builder with no schema and unlimited budgets.
    pub fn new() -> AnalyzerBuilder {
        AnalyzerBuilder::default()
    }

    /// Analyses run relative to `schema` (compiled once, at build time).
    pub fn schema(mut self, schema: Schema) -> AnalyzerBuilder {
        self.schema = Some(schema);
        self
    }

    /// Resource budgets every run is governed by.
    ///
    /// # Examples
    ///
    /// A one-state cap cannot decide a dependent pair; the run stops with
    /// an exhausted verdict instead of a wrong answer:
    ///
    /// ```
    /// use regtree_core::{Analyzer, FdBuilder, update_class_from_edges, Resource, RunLimits};
    /// use regtree_alphabet::Alphabet;
    ///
    /// let a = Alphabet::new();
    /// let fd = FdBuilder::new(a.clone())
    ///     .context("catalog").condition("item/sku").target("item/price")
    ///     .build().unwrap();
    /// let class = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
    /// let analyzer = Analyzer::builder()
    ///     .limits(RunLimits::default().with_max_states(1))
    ///     .build();
    /// let analysis = analyzer.independence(&fd, &class);
    /// assert_eq!(analysis.verdict.exhausted(), Some(Resource::States));
    /// ```
    pub fn limits(mut self, limits: RunLimits) -> AnalyzerBuilder {
        self.limits = limits;
        self
    }

    /// Cancellation token batch operations poll. Cancelling it aborts
    /// in-flight matrix cells and FD checks at their next checkpoint.
    pub fn cancel_token(mut self, token: CancelToken) -> AnalyzerBuilder {
        self.cancel = Some(token);
        self
    }

    /// Attaches a [`Tracer`]: every run emits phase spans (compile,
    /// search, matrix cells, FD checks) and budget-site events to it.
    /// Without a tracer the emission sites compile down to a null check —
    /// see [`regtree_runtime::trace`].
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::{Analyzer, FdBuilder, update_class_from_edges, SummarySink, SpanKind};
    /// use regtree_alphabet::Alphabet;
    /// use std::sync::Arc;
    ///
    /// let a = Alphabet::new();
    /// let fd = FdBuilder::new(a.clone())
    ///     .context("catalog").condition("item/sku").target("item/price")
    ///     .build().unwrap();
    /// let class = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
    ///
    /// let sink = Arc::new(SummarySink::new());
    /// let analyzer = Analyzer::builder().tracer(sink.clone()).build();
    /// analyzer.independence(&fd, &class);
    /// assert_eq!(sink.summary().span(SpanKind::IcSearch).count, 1);
    /// ```
    pub fn tracer(mut self, tracer: Arc<dyn Tracer>) -> AnalyzerBuilder {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the analyzer, compiling the schema automaton if one was set.
    pub fn build(self) -> Analyzer {
        Analyzer {
            schema_auto: self.schema.as_ref().map(|s| s.compiled()),
            schema: self.schema,
            limits: self.limits,
            cancel: self.cancel,
            trace: self.tracer.map(TraceHandle::new).unwrap_or_default(),
            patterns: Mutex::new(HashMap::new()),
        }
    }
}

/// Per-call overrides of an [`Analyzer`]'s run governance: tighter (or
/// different) [`RunLimits`] and a dedicated [`CancelToken`] for one call,
/// while the compiled schema and pattern caches stay shared.
///
/// This is what lets a long-lived service hold one `Analyzer` per session
/// and still give every request its own budget and cancellation scope —
/// the builder-time token would cancel *every* in-flight call at once.
/// Absent fields fall back to the analyzer's builder-time configuration.
///
/// ```
/// use regtree_core::{Analyzer, FdBuilder, update_class_from_edges};
/// use regtree_core::{CancelToken, Resource, RunLimits, RunOverrides};
/// use regtree_alphabet::Alphabet;
///
/// let a = Alphabet::new();
/// let fd = FdBuilder::new(a.clone())
///     .context("catalog").condition("item/sku").target("item/price")
///     .build().unwrap();
/// let reprice = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
/// let analyzer = Analyzer::builder().build();
///
/// // A pre-cancelled request aborts immediately…
/// let token = CancelToken::new();
/// token.cancel();
/// let run = RunOverrides::new().cancel_token(token);
/// let analysis = analyzer.independence_with(&fd, &reprice, &run);
/// assert_eq!(analysis.verdict.exhausted(), Some(Resource::Cancelled));
///
/// // …while the analyzer itself is untouched for the next caller.
/// assert!(!analyzer.independence(&fd, &reprice).verdict.is_independent());
/// ```
#[derive(Clone, Default)]
pub struct RunOverrides {
    limits: Option<RunLimits>,
    cancel: Option<CancelToken>,
}

impl RunOverrides {
    /// No overrides: the call runs under the analyzer's own configuration.
    pub fn new() -> RunOverrides {
        RunOverrides::default()
    }

    /// Budgets for this call, replacing the analyzer's limits.
    pub fn limits(mut self, limits: RunLimits) -> RunOverrides {
        self.limits = Some(limits);
        self
    }

    /// Cancellation token for this call, replacing the analyzer's token.
    pub fn cancel_token(mut self, token: CancelToken) -> RunOverrides {
        self.cancel = Some(token);
        self
    }
}

/// A reusable, thread-safe front end over independence analysis, batch
/// matrices, and FD satisfaction checking. See the [module docs](self).
///
/// # Schema contract
///
/// [`AnalyzerBuilder::build`] is infallible: an analyzer without a schema
/// is fully functional, running every analysis schema-free (all documents
/// admitted). The entry points that *require* a schema —
/// [`Analyzer::validate`] and [`Analyzer::try_schema`] — return the typed
/// [`Error::NoSchema`] instead of panicking, so embedding services can map
/// the condition to a protocol error.
pub struct Analyzer {
    schema: Option<Schema>,
    schema_auto: Option<std::sync::Arc<HedgeAutomaton>>,
    limits: RunLimits,
    cancel: Option<CancelToken>,
    trace: TraceHandle,
    /// Compiled pattern automata, keyed by structural identity so distinct
    /// but identical `Fd`/`UpdateClass` values share one compilation.
    patterns: Mutex<HashMap<PatternKey, Arc<PatternAutomaton>>>,
}

impl Analyzer {
    /// Entry point: `Analyzer::builder().schema(s).limits(l).build()`.
    pub fn builder() -> AnalyzerBuilder {
        AnalyzerBuilder::new()
    }

    /// The schema analyses run against, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// The budgets every run is governed by.
    pub fn limits(&self) -> &RunLimits {
        &self.limits
    }

    /// Compiled patterns currently cached (observability/test hook).
    pub fn cached_patterns(&self) -> usize {
        self.patterns.lock().len()
    }

    /// Compiles (or recalls) the automaton of `pattern`.
    fn compiled(&self, pattern: &RegularTreePattern, marked: bool) -> Arc<PatternAutomaton> {
        let key: PatternKey = (
            pattern.template().sketch(),
            pattern.selected().iter().map(|w| w.0).collect(),
            marked,
        );
        if let Some(hit) = self.patterns.lock().get(&key) {
            return Arc::clone(hit);
        }
        // Compile outside the lock: compilation can be slow and concurrent
        // misses for the same key are idempotent.
        let compiled = Arc::new(compile_pattern(pattern, marked));
        Arc::clone(self.patterns.lock().entry(key).or_insert(compiled))
    }

    /// The limits and cancel token effective for one call: the override
    /// when present, the analyzer's configuration otherwise.
    fn effective<'a>(&'a self, run: &'a RunOverrides) -> (&'a RunLimits, Option<&'a CancelToken>) {
        (
            run.limits.as_ref().unwrap_or(&self.limits),
            run.cancel.as_ref().or(self.cancel.as_ref()),
        )
    }

    /// A per-run budget honoring the effective limits, cancel token and
    /// the analyzer's trace handle.
    fn budget(&self, run: &RunOverrides) -> Budget {
        let (limits, cancel) = self.effective(run);
        let mut b = Budget::new(limits).with_trace(self.trace.clone());
        if let Some(c) = cancel {
            b = b.with_cancel(c.clone());
        }
        b
    }

    /// The schema analyses run against, or [`Error::NoSchema`] when the
    /// analyzer was built without one. The typed counterpart of
    /// [`Analyzer::schema`] for callers that treat a missing schema as an
    /// error (services answering `validate`-style requests).
    pub fn try_schema(&self) -> Result<&Schema, Error> {
        self.schema.as_ref().ok_or(Error::NoSchema)
    }

    /// Validates `doc` against the analyzer's schema.
    ///
    /// Returns [`Error::NoSchema`] when the analyzer was built without a
    /// schema and [`Error::Validation`] when the document does not conform
    /// — never panics. See the [schema contract](Analyzer#schema-contract).
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::{Analyzer, Error};
    /// use regtree_alphabet::Alphabet;
    /// use regtree_xml::parse_document;
    ///
    /// let a = Alphabet::new();
    /// let doc = parse_document(&a, "<catalog></catalog>").unwrap();
    /// let bare = Analyzer::builder().build();
    /// assert!(matches!(bare.validate(&doc), Err(Error::NoSchema)));
    /// ```
    pub fn validate(&self, doc: &Document) -> Result<(), Error> {
        self.try_schema()?.validate(doc)?;
        Ok(())
    }

    /// Runs the independence criterion for `fd` against `class` under the
    /// analyzer's schema and budgets.
    ///
    /// Verdict-identical to [`crate::check_independence_eager`] when the
    /// limits are unlimited; under finite budgets an undecided run returns
    /// `Verdict::Unknown { exhausted: Some(resource) }` instead of running
    /// to completion. [`IndependenceAnalysis::metrics`] is always populated.
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::{Analyzer, FdBuilder, update_class_from_edges};
    /// use regtree_alphabet::Alphabet;
    ///
    /// let a = Alphabet::new();
    /// // catalog : item/sku -> item/price
    /// let fd = FdBuilder::new(a.clone())
    ///     .context("catalog").condition("item/sku").target("item/price")
    ///     .build().unwrap();
    /// let analyzer = Analyzer::builder().build();
    ///
    /// // Restocking never touches sku or price: provably independent.
    /// let restock = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
    /// assert!(analyzer.independence(&fd, &restock).verdict.is_independent());
    ///
    /// // Repricing rewrites the FD's target: the criterion finds a witness.
    /// let reprice = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
    /// assert!(!analyzer.independence(&fd, &reprice).verdict.is_independent());
    /// ```
    pub fn independence(&self, fd: &Fd, class: &UpdateClass) -> IndependenceAnalysis {
        self.independence_with(fd, class, &RunOverrides::default())
    }

    /// [`Analyzer::independence`] with per-call [`RunOverrides`]: this
    /// request runs under its own limits/cancel token while the compiled
    /// schema and pattern caches stay shared.
    pub fn independence_with(
        &self,
        fd: &Fd,
        class: &UpdateClass,
        run: &RunOverrides,
    ) -> IndependenceAnalysis {
        let alphabet = fd.template().alphabet().clone();
        let compile = Stopwatch::start();
        let (pa_fd, pa_u) = {
            let _span = self.trace.span(SpanKind::Compile, "independence patterns");
            (
                self.compiled(fd.pattern(), true),
                self.compiled(class.pattern(), false),
            )
        };
        let compile_nanos = compile.elapsed_nanos();
        check_independence_governed(
            &alphabet,
            &pa_fd,
            &pa_u,
            class,
            self.schema_auto.as_deref(),
            None,
            None,
            self.budget(run),
            compile_nanos,
        )
    }

    /// Runs the criterion for every (FD, class) pair in parallel, sharing
    /// the schema automaton, cached pattern compilations, one guard-minterm
    /// partition, and — when a deadline is set — one wall-clock budget for
    /// the whole matrix (count caps apply per cell).
    ///
    /// Cancellation (via the builder's token) aborts remaining cells; the
    /// returned matrix still has every cell, with aborted ones reporting
    /// `Unknown { exhausted: Some(Cancelled) }`.
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::{Analyzer, FdBuilder, update_class_from_edges};
    /// use regtree_alphabet::Alphabet;
    ///
    /// let a = Alphabet::new();
    /// let fd = FdBuilder::new(a.clone())
    ///     .context("catalog").condition("item/sku").target("item/price")
    ///     .build().unwrap();
    /// let restock = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
    /// let reprice = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
    ///
    /// let analyzer = Analyzer::builder().build();
    /// let matrix = analyzer.matrix(
    ///     &[("price", &fd)],
    ///     &[("restock", &restock), ("reprice", &reprice)],
    /// );
    /// assert!(matrix.independent(0, 0));
    /// assert!(!matrix.independent(0, 1));
    /// assert_eq!(matrix.recheck_count(), 1);
    /// ```
    pub fn matrix(
        &self,
        fds: &[(&str, &Fd)],
        classes: &[(&str, &UpdateClass)],
    ) -> IndependenceMatrix {
        self.matrix_with(fds, classes, &RunOverrides::default())
    }

    /// [`Analyzer::matrix`] with per-call [`RunOverrides`].
    pub fn matrix_with(
        &self,
        fds: &[(&str, &Fd)],
        classes: &[(&str, &UpdateClass)],
        run: &RunOverrides,
    ) -> IndependenceMatrix {
        let compile = Stopwatch::start();
        let (pa_fds, pa_us) = {
            let _span = self.trace.span(SpanKind::Compile, "matrix rows/columns");
            let pa_fds: Vec<_> = fds
                .iter()
                .map(|(_, fd)| self.compiled(fd.pattern(), true))
                .collect();
            let pa_us: Vec<_> = classes
                .iter()
                .map(|(_, class)| self.compiled(class.pattern(), false))
                .collect();
            (pa_fds, pa_us)
        };
        let compile_nanos = compile.elapsed_nanos();
        let (limits, cancel) = self.effective(run);
        analyze_matrix_governed(
            fds,
            classes,
            self.schema_auto.as_deref(),
            &pa_fds,
            &pa_us,
            limits,
            cancel,
            &self.trace,
            compile_nanos,
        )
    }

    /// Like [`Analyzer::matrix`], but reasons about the FD *set* first:
    /// rows implied by the rest ([`FdSet::minimize`], run under the
    /// analyzer's limits) never reach the engine and report
    /// [`crate::CellProvenance::ImpliedRow`]; among the kept rows a
    /// verdict is reused along structural containment ([`crate::subsumes`])
    /// in the sound direction only. Reused cells count in
    /// `RunMetrics::verdicts_reused` and fire
    /// [`crate::EventKind::VerdictReused`].
    ///
    /// The pruned matrix has the same shape as the unpruned one (every FD
    /// keeps its row), and agrees with it on every cell both paths compute.
    /// Dropping implied rows is sound for the *set-invariant* deployment —
    /// the FD set held before the update, so re-verifying the kept core
    /// re-establishes the dropped FDs — not because implied rows would be
    /// individually independent; accordingly they are excluded from
    /// [`IndependenceMatrix::fds_to_recheck`] but never claimed
    /// independent.
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::{Analyzer, CellProvenance, FdBuilder, update_class_from_edges};
    /// use regtree_alphabet::Alphabet;
    ///
    /// let a = Alphabet::new();
    /// let fd = FdBuilder::new(a.clone())
    ///     .context("catalog").condition("item/sku").target("item/price")
    ///     .build().unwrap();
    /// // Same FD weakened with an extra condition: implied, hence pruned.
    /// let weaker = FdBuilder::new(a.clone())
    ///     .context("catalog").condition("item/sku").condition("item/name")
    ///     .target("item/price")
    ///     .build().unwrap();
    /// let reprice = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
    ///
    /// let analyzer = Analyzer::builder().build();
    /// let m = analyzer.matrix_pruned(
    ///     &[("price", &fd), ("price-weak", &weaker)],
    ///     &[("reprice", &reprice)],
    /// );
    /// assert_eq!(m.cell(1, 0).provenance, CellProvenance::ImpliedRow { by: vec![0] });
    /// // Only the implier needs a recheck after a reprice.
    /// assert_eq!(m.fds_to_recheck(0), vec![0]);
    /// assert_eq!(m.computed_count(), 1);
    /// ```
    pub fn matrix_pruned(
        &self,
        fds: &[(&str, &Fd)],
        classes: &[(&str, &UpdateClass)],
    ) -> IndependenceMatrix {
        self.matrix_pruned_with(fds, classes, &RunOverrides::default())
    }

    /// [`Analyzer::matrix_pruned`] with per-call [`RunOverrides`] (the
    /// overridden limits also govern the implication closure).
    pub fn matrix_pruned_with(
        &self,
        fds: &[(&str, &Fd)],
        classes: &[(&str, &UpdateClass)],
        run: &RunOverrides,
    ) -> IndependenceMatrix {
        let (limits, cancel) = self.effective(run);
        let mut set = FdSet::new();
        for (name, fd) in fds {
            set.push(*name, (*fd).clone());
        }
        let minimization = set.minimize(limits);
        let compile = Stopwatch::start();
        let (pa_kept, pa_us) = {
            let _span = self
                .trace
                .span(SpanKind::Compile, "pruned matrix rows/columns");
            let pa_kept: Vec<_> = minimization
                .kept
                .iter()
                .map(|&i| self.compiled(fds[i].1.pattern(), true))
                .collect();
            let pa_us: Vec<_> = classes
                .iter()
                .map(|(_, class)| self.compiled(class.pattern(), false))
                .collect();
            (pa_kept, pa_us)
        };
        let compile_nanos = compile.elapsed_nanos();
        analyze_matrix_pruned_governed(
            fds,
            classes,
            self.schema_auto.as_deref(),
            &minimization,
            &pa_kept,
            &pa_us,
            limits,
            cancel,
            &self.trace,
            compile_nanos,
        )
    }

    /// Checks every FD of `fds` on `doc` in parallel under the analyzer's
    /// budgets (deadline shared by the batch, count caps per FD). Outcomes
    /// are in input order; the report carries merged work counters.
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::{Analyzer, FdBuilder};
    /// use regtree_alphabet::Alphabet;
    /// use regtree_xml::parse_document;
    ///
    /// let a = Alphabet::new();
    /// let fd = FdBuilder::new(a.clone())
    ///     .context("s").condition("i/k").target("i/v")
    ///     .build().unwrap();
    /// let doc = parse_document(
    ///     &a,
    ///     "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>1</v></i></s>",
    /// ).unwrap();
    ///
    /// let report = Analyzer::builder().build().check_fds(&[fd], &doc);
    /// assert!(report.all_satisfied());
    /// assert!(report.metrics.dfa_steps > 0);
    /// ```
    pub fn check_fds(&self, fds: &[Fd], doc: &Document) -> FdBatchReport {
        self.check_fds_with(fds, doc, &RunOverrides::default())
    }

    /// [`Analyzer::check_fds`] with per-call [`RunOverrides`].
    pub fn check_fds_with(&self, fds: &[Fd], doc: &Document, run: &RunOverrides) -> FdBatchReport {
        let (limits, cancel) = self.effective(run);
        check_fds_governed(fds, doc, limits, cancel, &self.trace)
    }

    /// Builds an [`IncrementalChecker`] over `fds` and `vdoc` that runs its
    /// initial verification and every later recheck under the analyzer's
    /// limits, cancel token, and tracer. The checker is the stateful
    /// counterpart of
    /// [`Analyzer::check_fds`] for workloads that stream updates against
    /// one document (see [`crate::incremental`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use regtree_core::{Analyzer, FdBuilder};
    /// use regtree_alphabet::Alphabet;
    /// use regtree_xml::{parse_document, VersionedDocument};
    ///
    /// let a = Alphabet::new();
    /// let fd = FdBuilder::new(a.clone())
    ///     .context("catalog").condition("item/sku").target("item/price")
    ///     .build().unwrap();
    /// let doc = parse_document(&a, "<catalog></catalog>").unwrap();
    /// let vdoc = VersionedDocument::new(doc);
    /// let checker = Analyzer::builder().build().incremental_checker(vec![fd], &vdoc);
    /// assert!(checker.all_satisfied());
    /// ```
    pub fn incremental_checker(
        &self,
        fds: Vec<Fd>,
        vdoc: &VersionedDocument,
    ) -> IncrementalChecker {
        IncrementalChecker::with_governance(
            fds,
            vdoc,
            self.limits,
            self.trace.clone(),
            self.cancel.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdBuilder;
    use crate::independence::Verdict;
    use crate::update::update_class_from_edges;
    use regtree_alphabet::Alphabet;
    use regtree_runtime::Resource;
    use regtree_xml::parse_document;

    fn fd_price(a: &Alphabet) -> Fd {
        FdBuilder::new(a.clone())
            .context("catalog")
            .condition("item/sku")
            .target("item/price")
            .build()
            .unwrap()
    }

    #[test]
    fn independence_matches_free_function() {
        let a = Alphabet::new();
        let fd = fd_price(&a);
        let indep = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
        let dep = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
        let an = Analyzer::builder().build();
        assert!(an.independence(&fd, &indep).verdict.is_independent());
        assert!(!an.independence(&fd, &dep).verdict.is_independent());
    }

    #[test]
    fn pattern_cache_is_shared_across_calls() {
        let a = Alphabet::new();
        let fd = fd_price(&a);
        let class = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
        let an = Analyzer::builder().build();
        an.independence(&fd, &class);
        let after_first = an.cached_patterns();
        assert_eq!(after_first, 2, "one FD + one class compilation");
        an.independence(&fd, &class);
        assert_eq!(an.cached_patterns(), after_first, "second call hits cache");
        // The matrix reuses the same cache entries.
        an.matrix(&[("p", &fd)], &[("s", &class)]);
        assert_eq!(an.cached_patterns(), after_first);
    }

    #[test]
    fn matrix_interner_matches_per_cell_results() {
        use crate::matrix::CellProvenance;
        let a = Alphabet::new();
        // Row 2 duplicates row 0: the pattern cache maps both to the same
        // compiled Arc, so the shared interner runs each of their cells
        // once and copies the verdict to the twin.
        let fd0 = fd_price(&a);
        let fd1 = FdBuilder::new(a.clone())
            .context("catalog")
            .condition("item/sku")
            .target("item/stock")
            .build()
            .unwrap();
        let fd2 = fd_price(&a);
        let c0 = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
        let c1 = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
        let c2 = update_class_from_edges(&a, &["catalog/item/sku"]).unwrap();
        let an = Analyzer::builder().build();
        let m = an.matrix(
            &[("f0", &fd0), ("f1", &fd1), ("f2", &fd2)],
            &[("c0", &c0), ("c1", &c1), ("c2", &c2)],
        );
        assert_eq!(m.computed_count(), 6, "{m}");
        assert_eq!(m.reused_count(), 3, "{m}");
        // Whichever twin row wins the interner race computes; the other
        // reuses. Each column must show exactly that pairing.
        for j in 0..3 {
            match (&m.cell(0, j).provenance, &m.cell(2, j).provenance) {
                (CellProvenance::Computed, CellProvenance::ReusedFrom { fd: 0 })
                | (CellProvenance::ReusedFrom { fd: 2 }, CellProvenance::Computed) => {}
                other => panic!("unexpected provenances in column {j}: {other:?}"),
            }
        }
        // Every cell agrees with a fresh per-cell engine run (no sharing).
        for (i, fd) in [&fd0, &fd1, &fd2].into_iter().enumerate() {
            for (j, class) in [&c0, &c1, &c2].into_iter().enumerate() {
                let solo = Analyzer::builder().build().independence(fd, class);
                assert_eq!(
                    m.cell(i, j).verdict.is_independent(),
                    solo.verdict.is_independent(),
                    "cell ({i}, {j}) disagrees with the per-cell engine"
                );
            }
        }
    }

    #[test]
    fn metrics_are_populated() {
        let a = Alphabet::new();
        let fd = fd_price(&a);
        let class = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
        let an = Analyzer::builder().build();
        let r = an.independence(&fd, &class);
        assert!(r.metrics.states_interned > 0, "{:?}", r.metrics);
        assert!(r.metrics.frontier_pushes > 0, "{:?}", r.metrics);
        assert!(r.metrics.guard_intersections > 0, "{:?}", r.metrics);
    }

    #[test]
    fn one_state_budget_reports_exhaustion_not_a_wrong_verdict() {
        let a = Alphabet::new();
        let fd = fd_price(&a);
        let class = update_class_from_edges(&a, &["catalog/item/price"]).unwrap();
        let an = Analyzer::builder()
            .limits(RunLimits::default().with_max_states(1))
            .build();
        match an.independence(&fd, &class).verdict {
            Verdict::Unknown {
                exhausted: Some(Resource::States),
                ..
            } => {}
            // A root hit within one state would also be sound, but this
            // instance needs several states: anything else is a bug.
            other => panic!("expected states exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn check_fds_reports_outcomes_in_order() {
        let a = Alphabet::new();
        let fd = fd_price(&a);
        let doc = parse_document(
            &a,
            "<catalog><item><sku>1</sku><price>2</price></item>\
             <item><sku>1</sku><price>3</price></item></catalog>",
        )
        .unwrap();
        let an = Analyzer::builder().build();
        let report = an.check_fds(&[fd], &doc);
        assert_eq!(report.outcomes.len(), 1);
        assert!(!report.all_satisfied());
        assert!(report.metrics.dfa_steps > 0);
    }

    #[test]
    fn schema_is_compiled_once_and_used() {
        let a = Alphabet::new();
        let schema = Schema::parse(
            &a,
            "root: catalog\ncatalog: item*\nitem: sku price\nsku: #text\nprice: #text\n",
        )
        .unwrap();
        let fd = fd_price(&a);
        let class = update_class_from_edges(&a, &["catalog/item/stock"]).unwrap();
        let an = Analyzer::builder().schema(schema).build();
        assert!(an.schema().is_some());
        // `stock` cannot occur under the schema at all: still independent.
        assert!(an.independence(&fd, &class).verdict.is_independent());
    }
}
