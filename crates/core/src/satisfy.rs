//! FD satisfaction checking (Definition 5).
//!
//! A document satisfies `(FD, c)` when any two traces agreeing on the
//! context image (node identity) and on every condition image (under its
//! equality type) also agree on the target image. Operationally: project
//! every mapping onto `(c, p1, …, pn, q)`, bucket the projections by
//! `(context-id, condition keys)` and verify each bucket has exactly one
//! target class.
//!
//! Value-typed keys hash the rooted subtree canonically
//! ([`regtree_xml::value_hash`]) and candidate collisions are confirmed with
//! the full structural comparison — hash collisions cannot produce false
//! verdicts.

use std::collections::HashMap;

use regtree_runtime::{
    Budget, CancelToken, Resource, RunLimits, RunMetrics, SpanKind, Stopwatch, TraceHandle,
};
use regtree_xml::{value_eq_in, value_hash, Document, LabelIndex, NodeId};

use crate::fd::{EqualityType, Fd};

/// A witness of an FD violation: two trace projections that agree on context
/// and conditions but disagree on the target.
#[derive(Clone, Debug)]
pub struct FdViolation {
    /// The shared context node.
    pub context: NodeId,
    /// Condition images of the first trace.
    pub conditions_a: Vec<NodeId>,
    /// Condition images of the second trace.
    pub conditions_b: Vec<NodeId>,
    /// Target image of the first trace.
    pub target_a: NodeId,
    /// Target image of the second trace.
    pub target_b: NodeId,
}

impl FdViolation {
    /// Human-readable rendering with Dewey positions.
    pub fn describe(&self, doc: &Document) -> String {
        format!(
            "FD violated under context {}: conditions {:?} / {:?} agree but targets {} and {} differ",
            doc.dewey_string(self.context),
            self.conditions_a
                .iter()
                .map(|&n| doc.dewey_string(n))
                .collect::<Vec<_>>(),
            self.conditions_b
                .iter()
                .map(|&n| doc.dewey_string(n))
                .collect::<Vec<_>>(),
            doc.dewey_string(self.target_a),
            doc.dewey_string(self.target_b),
        )
    }
}

/// A hashable first-pass key; exact equality is confirmed afterwards.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum KeyPart {
    Node(NodeId),
    ValueHash(u64),
}

/// One confirmed condition-equal class: its condition representatives and
/// the target representative every later trace must agree with.
#[derive(Clone, Debug)]
struct Group {
    conditions: Vec<NodeId>,
    target: NodeId,
}

/// The bucket structure a satisfied FD check leaves behind, keyed by
/// context node so an incremental recheck can drop the buckets of the
/// contexts an edit touched and re-derive only those
/// ([`crate::IncrementalChecker`]).
///
/// Invariant: inserting every projection of a document without hitting a
/// violation is exactly [`check_fd_governed`] returning `Satisfied` — the
/// two share this code path.
#[derive(Clone, Debug, Default)]
pub(crate) struct BucketState {
    per_context: HashMap<NodeId, HashMap<Vec<KeyPart>, Vec<Group>>>,
}

impl BucketState {
    /// Folds one `(c, p1…pn, q)` projection in; `Err` is a violation
    /// witness against a previously inserted trace of the same context.
    pub(crate) fn insert(
        &mut self,
        fd: &Fd,
        doc: &Document,
        proj: &[NodeId],
    ) -> Result<(), FdViolation> {
        let n_cond = fd.conditions().len();
        let eqs = fd.equality();
        let context = proj[0];
        let conditions: Vec<NodeId> = proj[1..1 + n_cond].to_vec();
        let target = proj[1 + n_cond];
        let key: Vec<KeyPart> = conditions
            .iter()
            .enumerate()
            .map(|(i, &c)| key_part(doc, c, eqs[i]))
            .collect();
        let groups = self
            .per_context
            .entry(context)
            .or_default()
            .entry(key)
            .or_default();
        for g in groups.iter() {
            let same_conditions = g
                .conditions
                .iter()
                .zip(conditions.iter())
                .enumerate()
                .all(|(i, (&a, &b))| nodes_equal(doc, a, b, eqs[i]));
            if !same_conditions {
                continue; // genuine hash collision: different class
            }
            if !nodes_equal(doc, g.target, target, fd.target_equality()) {
                return Err(FdViolation {
                    context,
                    conditions_a: g.conditions.clone(),
                    conditions_b: conditions,
                    target_a: g.target,
                    target_b: target,
                });
            }
            return Ok(());
        }
        groups.push(Group { conditions, target });
        Ok(())
    }

    /// Drops every bucket of `context` (its traces will be re-derived).
    pub(crate) fn remove_context(&mut self, context: NodeId) {
        self.per_context.remove(&context);
    }

    /// The context nodes currently holding buckets.
    pub(crate) fn contexts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_context.keys().copied()
    }
}

/// The projection tuple an FD check keeps: `(c, p1, …, pn, q)`.
pub(crate) fn fd_keep(fd: &Fd) -> Vec<regtree_pattern::TemplateNodeId> {
    let mut keep = vec![fd.context()];
    keep.extend_from_slice(fd.conditions());
    keep.push(fd.target());
    keep
}

fn key_part(doc: &Document, n: NodeId, eq: EqualityType) -> KeyPart {
    match eq {
        EqualityType::Node => KeyPart::Node(n),
        EqualityType::Value => KeyPart::ValueHash(value_hash(doc, n)),
    }
}

fn nodes_equal(doc: &Document, a: NodeId, b: NodeId, eq: EqualityType) -> bool {
    match eq {
        EqualityType::Node => a == b,
        EqualityType::Value => a == b || value_eq_in(doc, a, b),
    }
}

/// Checks `fd` on `doc`; `Err` carries a concrete violation witness.
pub fn check_fd(fd: &Fd, doc: &Document) -> Result<(), FdViolation> {
    let index = LabelIndex::build(doc);
    check_fd_indexed(fd, doc, &index)
}

/// [`check_fd`] against a prebuilt label index for `doc` (amortizes the
/// index across many FDs on one document).
pub fn check_fd_indexed(fd: &Fd, doc: &Document, index: &LabelIndex) -> Result<(), FdViolation> {
    let mut budget = Budget::unlimited();
    match check_fd_governed(fd, doc, index, &mut budget) {
        FdOutcome::Satisfied => Ok(()),
        FdOutcome::Violated(v) => Err(v),
        FdOutcome::Unknown { .. } => unreachable!("unlimited budget cannot be exhausted"),
    }
}

/// Outcome of one governed FD check: the budget can run out before the
/// trace enumeration settles, in which case the verdict is `Unknown`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum FdOutcome {
    /// Every pair of traces agrees: the FD holds on the document.
    Satisfied,
    /// A concrete pair of traces violates the FD.
    Violated(FdViolation),
    /// The run was cut short before a verdict was reached.
    #[non_exhaustive]
    Unknown {
        /// The resource that ran out.
        exhausted: Resource,
    },
}

impl FdOutcome {
    /// Is this outcome `Satisfied`?
    pub fn is_satisfied(&self) -> bool {
        matches!(self, FdOutcome::Satisfied)
    }

    /// The exhausted resource, when the run was cut short.
    pub fn exhausted(&self) -> Option<Resource> {
        match self {
            FdOutcome::Unknown { exhausted, .. } => Some(*exhausted),
            _ => None,
        }
    }
}

/// [`check_fd_indexed`] under a resource [`Budget`]: pattern-evaluation work
/// (DFA steps, candidate-memo entries) is metered and the check aborts with
/// [`FdOutcome::Unknown`] once a cap or the deadline is crossed.
pub fn check_fd_governed(
    fd: &Fd,
    doc: &Document,
    index: &LabelIndex,
    budget: &mut Budget,
) -> FdOutcome {
    check_fd_governed_retaining(fd, doc, index, budget).0
}

/// [`check_fd_governed`] that additionally hands back the per-context
/// [`BucketState`] on a `Satisfied` verdict, for incremental rechecking to
/// patch instead of rebuild. `Violated`/`Unknown` runs return `None`: a
/// partial bucket state is not a sound basis for patching.
pub(crate) fn check_fd_governed_retaining(
    fd: &Fd,
    doc: &Document,
    index: &LabelIndex,
    budget: &mut Budget,
) -> (FdOutcome, Option<BucketState>) {
    let trace = budget.trace().clone();
    let _span = trace.span(SpanKind::FdCheck, "");
    // One unconditional poll before any work: a pre-cancelled token or an
    // already-elapsed deadline aborts even FDs that would decide before the
    // first amortized poll fires.
    if let Err(r) = budget.poll_now() {
        return (FdOutcome::Unknown { exhausted: r }, None);
    }
    let keep = fd_keep(fd);
    let projections = match regtree_pattern::project_mappings_governed(
        fd.template(),
        doc,
        index,
        &keep,
        budget,
    ) {
        Ok(p) => p,
        Err(r) => return (FdOutcome::Unknown { exhausted: r }, None),
    };

    let mut buckets = BucketState::default();
    for proj in projections {
        if let Err(v) = buckets.insert(fd, doc, &proj) {
            return (FdOutcome::Violated(v), None);
        }
    }
    (FdOutcome::Satisfied, Some(buckets))
}

/// Boolean convenience wrapper.
///
/// # Examples
///
/// ```
/// use regtree_core::{satisfies, FdBuilder};
/// use regtree_alphabet::Alphabet;
/// use regtree_xml::parse_document;
///
/// let a = Alphabet::new();
/// let fd = FdBuilder::new(a.clone())
///     .context("s").condition("i/k").target("i/v")
///     .build().unwrap();
/// let same = parse_document(
///     &a,
///     "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>1</v></i></s>",
/// ).unwrap();
/// let clash = parse_document(
///     &a,
///     "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>2</v></i></s>",
/// ).unwrap();
/// assert!(satisfies(&fd, &same));
/// assert!(!satisfies(&fd, &clash)); // same key, different values
/// ```
pub fn satisfies(fd: &Fd, doc: &Document) -> bool {
    check_fd(fd, doc).is_ok()
}

/// Report of a governed batch FD check: one outcome per FD (in input
/// order) plus the merged work counters of all runs.
#[derive(Clone, Debug)]
pub struct FdBatchReport {
    /// One outcome per FD, in input order.
    pub outcomes: Vec<FdOutcome>,
    /// Merged counters and wall time across all FD checks.
    pub metrics: RunMetrics,
}

impl FdBatchReport {
    /// Do all FDs hold? (`Unknown` outcomes count as not-satisfied.)
    pub fn all_satisfied(&self) -> bool {
        self.outcomes.iter().all(FdOutcome::is_satisfied)
    }
}

/// Checks many FDs on one document over scoped worker threads (the
/// ungoverned engine behind [`crate::Analyzer::check_fds`] and the
/// revalidation baseline).
pub(crate) fn check_fds_parallel_internal(
    fds: &[Fd],
    doc: &Document,
) -> Vec<Result<(), FdViolation>> {
    let index = LabelIndex::build(doc);
    regtree_pattern::parallel_map(fds, |fd| check_fd_indexed(fd, doc, &index))
}

/// Checks many FDs on one document over scoped worker threads, under a
/// shared budget. The wall-clock deadline is global to the batch; count
/// caps apply per FD. Cancellation aborts pending checks, which report
/// `Unknown { exhausted: Cancelled }`.
pub(crate) fn check_fds_governed(
    fds: &[Fd],
    doc: &Document,
    limits: &RunLimits,
    cancel: Option<&CancelToken>,
    trace: &TraceHandle,
) -> FdBatchReport {
    let search = Stopwatch::start();
    let index = LabelIndex::build(doc);
    let deadline_at = Budget::new(limits).deadline_at();
    let results = regtree_pattern::parallel_map(fds, |fd| {
        let mut budget = Budget::new(limits)
            .with_deadline_at(deadline_at)
            .with_trace(trace.clone());
        if let Some(c) = cancel {
            budget = budget.with_cancel(c.clone());
        }
        let outcome = check_fd_governed(fd, doc, &index, &mut budget);
        (outcome, budget.into_metrics())
    });
    let mut metrics = RunMetrics::default();
    let mut outcomes = Vec::with_capacity(results.len());
    for (outcome, m) in results {
        metrics.merge(&m);
        outcomes.push(outcome);
    }
    metrics.search_nanos = search.elapsed_nanos();
    FdBatchReport { outcomes, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdBuilder;
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    fn fd1(a: &Alphabet) -> Fd {
        FdBuilder::new(a.clone())
            .context("session")
            .condition("candidate/exam/discipline")
            .condition("candidate/exam/mark")
            .target("candidate/exam/rank")
            .build()
            .unwrap()
    }

    fn exam(disc: &str, mark: &str, rank: &str) -> String {
        format!(
            "<exam><discipline>{disc}</discipline><mark>{mark}</mark><rank>{rank}</rank></exam>"
        )
    }

    #[test]
    fn fd1_satisfied() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}{}</candidate><candidate>{}</candidate></session>",
                exam("math", "15", "2"),
                exam("bio", "15", "1"),
                exam("math", "15", "2"),
            ),
        )
        .unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }

    #[test]
    fn fd1_violated_across_candidates() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}</candidate><candidate>{}</candidate></session>",
                exam("math", "15", "2"),
                exam("math", "15", "3"), // same discipline+mark, different rank
            ),
        )
        .unwrap();
        let err = check_fd(&fd1(&a), &doc).unwrap_err();
        assert_ne!(err.target_a, err.target_b);
        assert!(err.describe(&doc).contains("FD violated"));
    }

    #[test]
    fn different_contexts_do_not_interact() {
        let a = Alphabet::new();
        // Two sessions: same discipline+mark with different ranks, but under
        // different session (context) nodes — no violation.
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}</candidate></session><session><candidate>{}</candidate></session>",
                exam("math", "15", "2"),
                exam("math", "15", "3"),
            ),
        )
        .unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }

    #[test]
    fn fd2_node_equality_target() {
        let a = Alphabet::new();
        // fd2: a candidate cannot take two different exams of the same
        // discipline at the same date (target: the exam node itself, =N).
        let fd2 = FdBuilder::new(a.clone())
            .context("session/candidate")
            .condition("exam/@date")
            .condition("exam/discipline")
            .target_with("exam", crate::fd::EqualityType::Node)
            .build()
            .unwrap();
        let ok = parse_document(
            &a,
            "<session><candidate>\
             <exam date=\"d1\"><discipline>math</discipline></exam>\
             <exam date=\"d2\"><discipline>math</discipline></exam>\
             </candidate></session>",
        )
        .unwrap();
        assert!(satisfies(&fd2, &ok));
        let bad = parse_document(
            &a,
            "<session><candidate>\
             <exam date=\"d1\"><discipline>math</discipline></exam>\
             <exam date=\"d1\"><discipline>math</discipline></exam>\
             </candidate></session>",
        )
        .unwrap();
        assert!(!satisfies(&fd2, &bad));
    }

    #[test]
    fn value_equality_is_structural() {
        let a = Alphabet::new();
        // Conditions compare whole subtrees: extra children break equality.
        let fd = FdBuilder::new(a.clone())
            .context("r")
            .condition("item/key")
            .target("item/val")
            .build()
            .unwrap();
        let doc = parse_document(
            &a,
            "<r><item><key><k/>x</key><val>1</val></item>\
               <item><key><k/></key><val>2</val></item></r>",
        )
        .unwrap();
        // Keys differ structurally (one has text 'x'), so no violation.
        assert!(satisfies(&fd, &doc));
    }

    #[test]
    fn no_mappings_vacuously_satisfied() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<empty/>").unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }

    #[test]
    fn same_trace_pair_is_not_a_violation() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}</candidate></session>",
                exam("m", "1", "1")
            ),
        )
        .unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }
}
