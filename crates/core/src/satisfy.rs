//! FD satisfaction checking (Definition 5).
//!
//! A document satisfies `(FD, c)` when any two traces agreeing on the
//! context image (node identity) and on every condition image (under its
//! equality type) also agree on the target image. Operationally: project
//! every mapping onto `(c, p1, …, pn, q)`, bucket the projections by
//! `(context-id, condition keys)` and verify each bucket has exactly one
//! target class.
//!
//! Value-typed keys hash the rooted subtree canonically
//! ([`regtree_xml::value_hash`]) and candidate collisions are confirmed with
//! the full structural comparison — hash collisions cannot produce false
//! verdicts.

use std::collections::HashMap;

use regtree_xml::{value_eq_in, value_hash, Document, LabelIndex, NodeId};

use crate::fd::{EqualityType, Fd};

/// A witness of an FD violation: two trace projections that agree on context
/// and conditions but disagree on the target.
#[derive(Clone, Debug)]
pub struct FdViolation {
    /// The shared context node.
    pub context: NodeId,
    /// Condition images of the first trace.
    pub conditions_a: Vec<NodeId>,
    /// Condition images of the second trace.
    pub conditions_b: Vec<NodeId>,
    /// Target image of the first trace.
    pub target_a: NodeId,
    /// Target image of the second trace.
    pub target_b: NodeId,
}

impl FdViolation {
    /// Human-readable rendering with Dewey positions.
    pub fn describe(&self, doc: &Document) -> String {
        format!(
            "FD violated under context {}: conditions {:?} / {:?} agree but targets {} and {} differ",
            doc.dewey_string(self.context),
            self.conditions_a
                .iter()
                .map(|&n| doc.dewey_string(n))
                .collect::<Vec<_>>(),
            self.conditions_b
                .iter()
                .map(|&n| doc.dewey_string(n))
                .collect::<Vec<_>>(),
            doc.dewey_string(self.target_a),
            doc.dewey_string(self.target_b),
        )
    }
}

/// A hashable first-pass key; exact equality is confirmed afterwards.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum KeyPart {
    Node(NodeId),
    ValueHash(u64),
}

fn key_part(doc: &Document, n: NodeId, eq: EqualityType) -> KeyPart {
    match eq {
        EqualityType::Node => KeyPart::Node(n),
        EqualityType::Value => KeyPart::ValueHash(value_hash(doc, n)),
    }
}

fn nodes_equal(doc: &Document, a: NodeId, b: NodeId, eq: EqualityType) -> bool {
    match eq {
        EqualityType::Node => a == b,
        EqualityType::Value => a == b || value_eq_in(doc, a, b),
    }
}

/// Checks `fd` on `doc`; `Err` carries a concrete violation witness.
pub fn check_fd(fd: &Fd, doc: &Document) -> Result<(), FdViolation> {
    let index = LabelIndex::build(doc);
    check_fd_indexed(fd, doc, &index)
}

/// [`check_fd`] against a prebuilt label index for `doc` (amortizes the
/// index across many FDs on one document).
pub fn check_fd_indexed(fd: &Fd, doc: &Document, index: &LabelIndex) -> Result<(), FdViolation> {
    let mut keep = vec![fd.context()];
    keep.extend_from_slice(fd.conditions());
    keep.push(fd.target());
    let projections = regtree_pattern::project_mappings_indexed(fd.template(), doc, index, &keep);

    let n_cond = fd.conditions().len();
    let eqs = fd.equality();
    let target_eq = fd.target_equality();

    // First-pass buckets on (context, condition hashes); each bucket holds a
    // list of groups, one per *confirmed* condition-equal class, with that
    // class's target representative.
    struct Group {
        conditions: Vec<NodeId>,
        target: NodeId,
    }
    let mut buckets: HashMap<Vec<KeyPart>, Vec<Group>> = HashMap::new();

    for proj in projections {
        let context = proj[0];
        let conditions: Vec<NodeId> = proj[1..1 + n_cond].to_vec();
        let target = proj[1 + n_cond];
        let mut key = Vec::with_capacity(n_cond + 1);
        key.push(KeyPart::Node(context));
        for (i, &c) in conditions.iter().enumerate() {
            key.push(key_part(doc, c, eqs[i]));
        }
        let groups = buckets.entry(key).or_default();
        let mut matched = false;
        for g in groups.iter() {
            let same_conditions = g
                .conditions
                .iter()
                .zip(conditions.iter())
                .enumerate()
                .all(|(i, (&a, &b))| nodes_equal(doc, a, b, eqs[i]));
            if !same_conditions {
                continue; // genuine hash collision: different class
            }
            matched = true;
            if !nodes_equal(doc, g.target, target, target_eq) {
                return Err(FdViolation {
                    context,
                    conditions_a: g.conditions.clone(),
                    conditions_b: conditions,
                    target_a: g.target,
                    target_b: target,
                });
            }
            break;
        }
        if !matched {
            groups.push(Group { conditions, target });
        }
    }
    Ok(())
}

/// Boolean convenience wrapper.
pub fn satisfies(fd: &Fd, doc: &Document) -> bool {
    check_fd(fd, doc).is_ok()
}

/// Checks many FDs on one document over scoped worker threads.
///
/// The label index is built once and shared (read-only) by all workers;
/// results are in `fds` order and agree exactly with [`check_fd`] run
/// sequentially on each FD.
pub fn check_fds_parallel(fds: &[Fd], doc: &Document) -> Vec<Result<(), FdViolation>> {
    let index = LabelIndex::build(doc);
    regtree_pattern::parallel_map(fds, |fd| check_fd_indexed(fd, doc, &index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdBuilder;
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    fn fd1(a: &Alphabet) -> Fd {
        FdBuilder::new(a.clone())
            .context("session")
            .condition("candidate/exam/discipline")
            .condition("candidate/exam/mark")
            .target("candidate/exam/rank")
            .build()
            .unwrap()
    }

    fn exam(disc: &str, mark: &str, rank: &str) -> String {
        format!(
            "<exam><discipline>{disc}</discipline><mark>{mark}</mark><rank>{rank}</rank></exam>"
        )
    }

    #[test]
    fn fd1_satisfied() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}{}</candidate><candidate>{}</candidate></session>",
                exam("math", "15", "2"),
                exam("bio", "15", "1"),
                exam("math", "15", "2"),
            ),
        )
        .unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }

    #[test]
    fn fd1_violated_across_candidates() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}</candidate><candidate>{}</candidate></session>",
                exam("math", "15", "2"),
                exam("math", "15", "3"), // same discipline+mark, different rank
            ),
        )
        .unwrap();
        let err = check_fd(&fd1(&a), &doc).unwrap_err();
        assert_ne!(err.target_a, err.target_b);
        assert!(err.describe(&doc).contains("FD violated"));
    }

    #[test]
    fn different_contexts_do_not_interact() {
        let a = Alphabet::new();
        // Two sessions: same discipline+mark with different ranks, but under
        // different session (context) nodes — no violation.
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}</candidate></session><session><candidate>{}</candidate></session>",
                exam("math", "15", "2"),
                exam("math", "15", "3"),
            ),
        )
        .unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }

    #[test]
    fn fd2_node_equality_target() {
        let a = Alphabet::new();
        // fd2: a candidate cannot take two different exams of the same
        // discipline at the same date (target: the exam node itself, =N).
        let fd2 = FdBuilder::new(a.clone())
            .context("session/candidate")
            .condition("exam/@date")
            .condition("exam/discipline")
            .target_with("exam", crate::fd::EqualityType::Node)
            .build()
            .unwrap();
        let ok = parse_document(
            &a,
            "<session><candidate>\
             <exam date=\"d1\"><discipline>math</discipline></exam>\
             <exam date=\"d2\"><discipline>math</discipline></exam>\
             </candidate></session>",
        )
        .unwrap();
        assert!(satisfies(&fd2, &ok));
        let bad = parse_document(
            &a,
            "<session><candidate>\
             <exam date=\"d1\"><discipline>math</discipline></exam>\
             <exam date=\"d1\"><discipline>math</discipline></exam>\
             </candidate></session>",
        )
        .unwrap();
        assert!(!satisfies(&fd2, &bad));
    }

    #[test]
    fn value_equality_is_structural() {
        let a = Alphabet::new();
        // Conditions compare whole subtrees: extra children break equality.
        let fd = FdBuilder::new(a.clone())
            .context("r")
            .condition("item/key")
            .target("item/val")
            .build()
            .unwrap();
        let doc = parse_document(
            &a,
            "<r><item><key><k/>x</key><val>1</val></item>\
               <item><key><k/></key><val>2</val></item></r>",
        )
        .unwrap();
        // Keys differ structurally (one has text 'x'), so no violation.
        assert!(satisfies(&fd, &doc));
    }

    #[test]
    fn no_mappings_vacuously_satisfied() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<empty/>").unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }

    #[test]
    fn same_trace_pair_is_not_a_violation() {
        let a = Alphabet::new();
        let doc = parse_document(
            &a,
            &format!(
                "<session><candidate>{}</candidate></session>",
                exam("m", "1", "1")
            ),
        )
        .unwrap();
        assert!(satisfies(&fd1(&a), &doc));
    }
}
