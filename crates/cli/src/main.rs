//! `rtpcheck` — command-line front-end for the `regtree` library.
//!
//! ```text
//! rtpcheck validate      --schema SCHEMA.rts DOC.xml...
//! rtpcheck fd-check      --fd "CTX : P1,P2 -> Q" DOC.xml...
//! rtpcheck fd-check      --fds FDS.lst DOC.xml...   (batch, parallel)
//! rtpcheck eval          --xpath "/session/candidate" DOC.xml
//! rtpcheck independence  --fd "CTX : P1 -> Q" --update "/xpath" [--schema S]
//!                        [--deadline-ms N] [--max-states N] [--stats]
//!                        [--format json] [--trace out.json] [--stats-verbose]
//! rtpcheck independence-matrix --fds FDS.lst --updates UPS.lst [--schema S]
//!                        [--prune]
//! rtpcheck fds minimize  --fds FDS.lst [BUDGET] [--format json]
//! rtpcheck demo
//! ```
//!
//! Schemas use the `label: content-model` rule format of
//! [`regtree_hedge::Schema::parse`]; FDs use the textual pattern language
//! of [`regtree_core::parse_fd`] — a superset of the \[8\] path formalism
//! adding descendant axes, wildcards and counting predicates (see
//! `docs/PATTERN_LANGUAGE.md`); update classes are positive-CoreXPath
//! queries whose final step is predicate-free (the selected node must be a
//! leaf of the update template).
//!
//! Analysis commands run through the [`regtree_core::Analyzer`] façade and
//! accept resource budgets (`--deadline-ms`, `--max-states`, `--max-memo`,
//! `--max-frontier`). A run that exhausts a budget prints what it knows and
//! exits 3 instead of hanging on an adversarial instance.
//!
//! Analysis commands also accept the tracing flags: `--trace FILE` captures
//! a timeline loadable in `chrome://tracing`/Perfetto (`--trace-format
//! jsonl` switches to one-record-per-line JSON), and `--stats-verbose`
//! prints a per-phase wall-time breakdown. With `--format json`, stdout is
//! exactly one JSON document — progress notes (such as the trace-file
//! confirmation) go to stderr.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use regtree_alphabet::Alphabet;
use regtree_core::api::{
    metrics_to_json, parse_update_json, phases_to_json, scope_name, DocumentChecks, FdCheckOutcome,
    FdCheckResponse, IndependenceResponse, Json, MatrixResponse, MinimizeResponse,
    PatternParseResponse, UpdateCheckEntry, UpdateResponse,
};
use regtree_core::{
    parse_fd, Analyzer, ChromeTraceSink, EventKind, FdOutcome, FdSet, RunLimits, RunMetrics,
    SpanId, SpanKind, SummarySink, TraceFormat, TraceSummary, Tracer, UpdateClass, Verdict,
};
use regtree_hedge::Schema;
use regtree_pattern::{parse_corexpath, CompiledPattern};
use regtree_xml::{parse_document, to_xml_with, SerializeOptions, VersionedDocument};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args.iter().map(String::as_str).collect::<Vec<_>>()) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(CliError::Violation(out)) => {
            print!("{out}");
            ExitCode::from(1)
        }
        Err(CliError::Exhausted(out)) => {
            print!("{out}");
            ExitCode::from(3)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
rtpcheck — regular tree patterns: XML FDs, updates and independence

USAGE:
  rtpcheck validate     --schema FILE DOC.xml...
  rtpcheck fd-check     --fd EXPR | --fds FILE [BUDGET] [OUTPUT] DOC.xml...
  rtpcheck fd-check     --fd EXPR | --fds FILE --updates FILE.jsonl DOC.xml
                        (apply a JSONL update stream in place; each FD is
                        rechecked at the smallest sound scope — see
                        'update request' syntax below)
  rtpcheck eval         --xpath PATH DOC.xml
  rtpcheck independence --fd EXPR --update PATH [--schema FILE] [BUDGET]
                        [OUTPUT]
  rtpcheck independence-matrix --fds FILE --updates FILE [--schema FILE]
                        [--prune] [BUDGET] [OUTPUT] (alias: matrix)
                        (--prune drops FDs implied by the rest of the set
                        and reuses verdicts along structural containment)
  rtpcheck fds minimize --fds FILE [BUDGET] [OUTPUT]
                        (irredundant core of an FD set with provenance;
                        exit 3 when the closure budget ran out — the
                        partial result is still sound)
  rtpcheck pattern parse [--explain] [--format json] EXPR...
                        (parse textual patterns, print the canonical form;
                        --explain also prints the compiled template)
  rtpcheck demo

  BUDGET flags:     --deadline-ms N  --max-states N  --max-memo N
                    --max-frontier N  (an exhausted run reports UNKNOWN)
  OUTPUT flags:     --format json|text  --stats  --stats-verbose
                    --trace FILE  --trace-format chrome|jsonl
                    (--format json: stdout is one JSON document; notes on
                    stderr. --trace: timeline for chrome://tracing/Perfetto)
  EXIT CODES:       0 independent/satisfied · 1 violation or unproven
                    independence · 2 usage/input errors · 3 budget exhausted
  FD EXPR syntax:   /ctx/path : cond1, cond2[N] -> target
                    (paths use the full pattern language: //, *, @attr,
                    text(), [q], [count(p) >= n] — docs/PATTERN_LANGUAGE.md)
  PATH syntax:      positive CoreXPath, e.g. /session/candidate/level
                    (predicate branches map in document order: [p] before
                    the continuation — Definition 2 order semantics)
  update request:   one JSON object per line ('#' comments skipped):
                    {\"select\": PATH, \"op\": replace|append_child|
                     prepend_child|delete|set_text, \"xml\": SUBTREE,
                     \"value\": TEXT, \"first_only\": BOOL}
";

/// CLI outcomes that need distinct exit codes.
#[derive(Debug)]
enum CliError {
    /// Bad arguments (exit 2).
    Usage(String),
    /// A check ran and found a violation or an unproven pair (exit 1) —
    /// output still printed.
    Violation(String),
    /// IO/parse failures (exit 2).
    Runtime(String),
    /// A resource budget ran out before the answer was decided (exit 3) —
    /// partial output still printed.
    Exhausted(String),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime(msg: impl std::fmt::Display) -> CliError {
    CliError::Runtime(msg.to_string())
}

/// Parsed flag set: `--key value` pairs plus positionals.
struct Flags {
    values: Vec<(String, String)>,
    positional: Vec<String>,
    json: bool,
    stats: bool,
    stats_verbose: bool,
    prune: bool,
    explain: bool,
}

fn parse_flags(args: &[&str]) -> Result<Flags, CliError> {
    let mut values = Vec::new();
    let mut positional = Vec::new();
    let mut json = false;
    let mut stats = false;
    let mut stats_verbose = false;
    let mut prune = false;
    let mut explain = false;
    let mut i = 0;
    while i < args.len() {
        let a = args[i];
        if a == "--json" {
            json = true;
            i += 1;
        } else if a == "--stats" {
            stats = true;
            i += 1;
        } else if a == "--stats-verbose" {
            stats_verbose = true;
            i += 1;
        } else if a == "--prune" {
            prune = true;
            i += 1;
        } else if a == "--explain" {
            explain = true;
            i += 1;
        } else if let Some(key) = a.strip_prefix("--") {
            let v = args
                .get(i + 1)
                .ok_or_else(|| usage(format!("flag --{key} needs a value")))?;
            values.push((key.to_string(), v.to_string()));
            i += 2;
        } else {
            positional.push(a.to_string());
            i += 1;
        }
    }
    Ok(Flags {
        values,
        positional,
        json,
        stats,
        stats_verbose,
        prune,
        explain,
    })
}

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| usage(format!("missing required flag --{key}")))
    }

    /// Did the user ask for JSON output (`--format json` or legacy `--json`)?
    fn wants_json(&self) -> Result<bool, CliError> {
        match self.get("format") {
            None => Ok(self.json),
            Some("json") => Ok(true),
            Some("text") => Ok(false),
            Some(other) => Err(usage(format!(
                "--format expects 'json' or 'text', got '{other}'"
            ))),
        }
    }

    fn u64_flag(&self, key: &str) -> Result<Option<u64>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| usage(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// Collects the budget flags into [`RunLimits`] (absent = unlimited).
    fn limits(&self) -> Result<RunLimits, CliError> {
        let mut l = RunLimits::default();
        if let Some(ms) = self.u64_flag("deadline-ms")? {
            l = l.with_deadline_ms(ms);
        }
        if let Some(n) = self.u64_flag("max-states")? {
            l = l.with_max_states(n);
        }
        if let Some(n) = self.u64_flag("max-memo")? {
            l = l.with_max_memo(n);
        }
        if let Some(n) = self.u64_flag("max-frontier")? {
            l = l.with_max_frontier(n);
        }
        Ok(l)
    }
}

fn run(args: &[&str]) -> Result<String, CliError> {
    let Some((&cmd, rest)) = args.split_first() else {
        return Err(usage("no subcommand"));
    };
    match cmd {
        "validate" => cmd_validate(rest),
        "fd-check" => cmd_fd_check(rest),
        "eval" => cmd_eval(rest),
        "independence" => cmd_independence(rest),
        "independence-matrix" | "matrix" => cmd_matrix(rest),
        "fds" => match rest.split_first() {
            Some((&"minimize", rest)) => cmd_fds_minimize(rest),
            Some((other, _)) => Err(usage(format!("unknown fds subcommand '{other}'"))),
            None => Err(usage("fds needs a subcommand (minimize)")),
        },
        "pattern" => match rest.split_first() {
            Some((&"parse", rest)) => cmd_pattern_parse(rest),
            Some((other, _)) => Err(usage(format!("unknown pattern subcommand '{other}'"))),
            None => Err(usage("pattern needs a subcommand (parse)")),
        },
        "demo" => cmd_demo(),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(usage(format!("unknown subcommand '{other}'"))),
    }
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| runtime(format!("reading {path}: {e}")))
}

fn load_docs(
    alphabet: &Alphabet,
    paths: &[String],
) -> Result<Vec<(String, regtree_xml::Document)>, CliError> {
    if paths.is_empty() {
        return Err(usage("no documents given"));
    }
    paths
        .iter()
        .map(|p| {
            let src = read_file(p)?;
            let doc = parse_document(alphabet, &src).map_err(runtime)?;
            Ok((p.clone(), doc))
        })
        .collect()
}

/// Trace sinks requested on the command line: `--trace FILE` captures a
/// Chrome-trace (or JSONL) timeline, `--stats-verbose` aggregates a per-phase
/// summary. Both may be active at once; [`TeeTracer`] fans the hooks out.
struct Tracing {
    /// Timeline sink plus its output path and format, when `--trace` was given.
    chrome: Option<(Arc<ChromeTraceSink>, String, TraceFormat)>,
    /// Aggregating sink, when `--stats-verbose` was given.
    summary: Option<Arc<SummarySink>>,
}

impl Tracing {
    fn from_flags(flags: &Flags) -> Result<Tracing, CliError> {
        let format = match flags.get("trace-format") {
            None => TraceFormat::Chrome,
            Some(name) => TraceFormat::from_name(name).ok_or_else(|| {
                usage(format!(
                    "--trace-format expects 'chrome' or 'jsonl', got '{name}'"
                ))
            })?,
        };
        let chrome = match flags.get("trace") {
            Some(path) => Some((Arc::new(ChromeTraceSink::new()), path.to_string(), format)),
            None if flags.get("trace-format").is_some() => {
                return Err(usage("--trace-format needs --trace FILE"));
            }
            None => None,
        };
        let summary = flags.stats_verbose.then(|| Arc::new(SummarySink::new()));
        Ok(Tracing { chrome, summary })
    }

    /// The tracer to attach to the analyzer, if any sink was requested.
    fn tracer(&self) -> Option<Arc<dyn Tracer>> {
        let mut sinks: Vec<Arc<dyn Tracer>> = Vec::new();
        if let Some((sink, _, _)) = &self.chrome {
            sinks.push(Arc::clone(sink) as Arc<dyn Tracer>);
        }
        if let Some(sink) = &self.summary {
            sinks.push(Arc::clone(sink) as Arc<dyn Tracer>);
        }
        match sinks.len() {
            0 => None,
            1 => sinks.pop(),
            _ => Some(Arc::new(TeeTracer(sinks))),
        }
    }

    /// Writes the trace file (if any) and snapshots the phase summary (if
    /// any). Called on every exit path — violation and exhaustion included —
    /// so a cut-short run still leaves its timeline behind.
    fn finish(&self) -> Result<Option<TraceSummary>, CliError> {
        if let Some((sink, path, format)) = &self.chrome {
            sink.save_to(path, *format)
                .map_err(|e| runtime(format!("writing trace {path}: {e}")))?;
            eprintln!("trace written to {path} ({} records)", sink.len());
        }
        Ok(self.summary.as_ref().map(|s| s.summary()))
    }
}

/// Forwards every hook to each sink. Span ids are allocated by the traced
/// code, not the sink, so the same id reaches all sinks and their span
/// begin/end pairs line up without translation.
struct TeeTracer(Vec<Arc<dyn Tracer>>);

impl Tracer for TeeTracer {
    fn span_begin(&self, id: SpanId, kind: SpanKind, label: &str) {
        for t in &self.0 {
            t.span_begin(id, kind, label);
        }
    }

    fn span_end(&self, id: SpanId, kind: SpanKind) {
        for t in &self.0 {
            t.span_end(id, kind);
        }
    }

    fn event(&self, kind: EventKind) {
        for t in &self.0 {
            t.event(kind);
        }
    }
}

/// Builds an [`Analyzer`] from the shared CLI flags: an optional schema, the
/// budget flags, and any requested trace sinks. Also reports whether a
/// schema was given.
fn build_analyzer(
    alphabet: &Alphabet,
    flags: &Flags,
    tracing: &Tracing,
) -> Result<(Analyzer, bool), CliError> {
    let mut builder = Analyzer::builder().limits(flags.limits()?);
    let with_schema = flags.get("schema").is_some();
    if let Some(path) = flags.get("schema") {
        builder = builder.schema(Schema::parse(alphabet, &read_file(path)?).map_err(runtime)?);
    }
    if let Some(tracer) = tracing.tracer() {
        builder = builder.tracer(tracer);
    }
    Ok((builder.build(), with_schema))
}

fn cmd_validate(args: &[&str]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let alphabet = Alphabet::new();
    let schema_src = read_file(flags.require("schema")?)?;
    let schema = Schema::parse(&alphabet, &schema_src).map_err(runtime)?;
    let docs = load_docs(&alphabet, &flags.positional)?;
    let mut out = String::new();
    let mut failed = false;
    for (path, doc) in &docs {
        match schema.validate(doc) {
            Ok(()) => writeln!(out, "{path}: valid").expect("write to string"),
            Err(e) => {
                failed = true;
                writeln!(out, "{path}: INVALID — {e}").expect("write to string");
            }
        }
    }
    if failed {
        Err(CliError::Violation(out))
    } else {
        Ok(out)
    }
}

fn cmd_fd_check(args: &[&str]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let alphabet = Alphabet::new();
    // Either one inline dependency (--fd EXPR) or a whole named list
    // (--fds FILE); a batch is checked per document by the analyzer's
    // governed parallel runner, one worker thread per core.
    let mut names: Vec<String> = Vec::new();
    let mut fds: Vec<regtree_core::Fd> = Vec::new();
    if let Some(path) = flags.get("fds") {
        for (name, expr) in parse_named_list(&read_file(path)?)? {
            let fd =
                parse_fd(&alphabet, &expr).map_err(|e| runtime(format!("fd '{name}': {e}")))?;
            names.push(name);
            fds.push(fd);
        }
    }
    if let Some(expr) = flags.get("fd") {
        let fd = parse_fd(&alphabet, expr).map_err(runtime)?;
        names.push("fd".to_string());
        fds.push(fd);
    }
    if fds.is_empty() {
        return Err(usage("missing required flag --fd EXPR (or --fds FILE)"));
    }
    if flags.get("updates").is_some() {
        return cmd_fd_check_updates(&flags, &alphabet, &names, &fds);
    }
    let json = flags.wants_json()?;
    let tracing = Tracing::from_flags(&flags)?;
    let docs = load_docs(&alphabet, &flags.positional)?;
    let mut builder = Analyzer::builder().limits(flags.limits()?);
    if let Some(tracer) = tracing.tracer() {
        builder = builder.tracer(tracer);
    }
    let analyzer = builder.build();
    let mut failed = false;
    let mut ran_out = false;
    let mut totals = RunMetrics::default();
    let mut reports = Vec::with_capacity(docs.len());
    for (path, doc) in &docs {
        let report = analyzer.check_fds(&fds, doc);
        totals.merge(&report.metrics);
        for outcome in &report.outcomes {
            match outcome {
                FdOutcome::Violated(_) => failed = true,
                FdOutcome::Unknown { .. } => ran_out = true,
                _ => {}
            }
        }
        reports.push((path, doc, report));
    }
    // The trace file is written before rendering so violation and
    // exhaustion exits still produce it.
    let phases = tracing.finish()?;
    let out = if json {
        // Machine-readable mode: stdout is exactly one JSON document in the
        // shared `regtree_core::api` shape (the same one `rtpserved` serves).
        let documents = reports
            .iter()
            .map(|(path, doc, report)| DocumentChecks {
                path: (*path).clone(),
                checks: names
                    .iter()
                    .zip(&report.outcomes)
                    .map(|(name, outcome)| {
                        let violation = match outcome {
                            FdOutcome::Violated(v) => Some(v.describe(doc)),
                            _ => None,
                        };
                        FdCheckOutcome::from_outcome(name, outcome, violation)
                    })
                    .collect(),
            })
            .collect();
        let mut resp = FdCheckResponse::from_documents(documents);
        resp.metrics = flags.stats.then_some(totals);
        resp.phases = phases.clone();
        format!("{}\n", resp.to_json().to_pretty())
    } else {
        let mut out = String::new();
        for (path, doc, report) in &reports {
            for (name, outcome) in names.iter().zip(&report.outcomes) {
                let prefix = if fds.len() == 1 {
                    (*path).clone()
                } else {
                    format!("{path} [{name}]")
                };
                match outcome {
                    FdOutcome::Satisfied => {
                        writeln!(out, "{prefix}: satisfies the FD").expect("write to string");
                    }
                    FdOutcome::Violated(v) => {
                        writeln!(out, "{prefix}: VIOLATED — {}", v.describe(doc))
                            .expect("write to string");
                    }
                    FdOutcome::Unknown { exhausted, .. } => {
                        writeln!(out, "{prefix}: UNKNOWN — {exhausted}").expect("write to string");
                    }
                    other => {
                        writeln!(out, "{prefix}: {other:?}").expect("write to string");
                    }
                }
            }
        }
        if flags.stats {
            writeln!(out, "stats: {totals}").expect("write to string");
        }
        if let Some(s) = &phases {
            write!(out, "{s}").expect("write to string");
        }
        out
    };
    if failed {
        Err(CliError::Violation(out))
    } else if ran_out {
        Err(CliError::Exhausted(out))
    } else {
        Ok(out)
    }
}

/// The `--updates FILE` mode of `fd-check`: one document, one JSONL stream
/// of update requests ([`regtree_core::api::parse_update_json`] shapes,
/// blank lines and `#` comments skipped). Updates are applied in place as
/// deltas and every FD is rechecked at the smallest sound scope instead of
/// from scratch (`regtree_core::incremental`).
fn cmd_fd_check_updates(
    flags: &Flags,
    alphabet: &Alphabet,
    names: &[String],
    fds: &[regtree_core::Fd],
) -> Result<String, CliError> {
    let json = flags.wants_json()?;
    let tracing = Tracing::from_flags(flags)?;
    let updates_src = read_file(flags.require("updates")?)?;
    let mut docs = load_docs(alphabet, &flags.positional)?;
    if docs.len() != 1 {
        return Err(usage("--updates mode checks exactly one DOC.xml"));
    }
    let (path, doc) = docs.remove(0);

    let mut builder = Analyzer::builder().limits(flags.limits()?);
    if let Some(tracer) = tracing.tracer() {
        builder = builder.tracer(tracer);
    }
    let analyzer = builder.build();
    let mut vdoc = VersionedDocument::new(doc);
    let mut checker = analyzer.incremental_checker(fds.to_vec(), &vdoc);

    let mut totals = RunMetrics::default();
    let mut responses: Vec<UpdateResponse> = Vec::new();
    let mut failed = false;
    let mut ran_out = false;
    for (lineno, line) in updates_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |e: String| runtime(format!("updates line {}: {e}", lineno + 1));
        let request = Json::parse(line).map_err(bad)?;
        let update = parse_update_json(alphabet, &request).map_err(bad)?;
        let report = checker
            .apply_and_recheck(&mut vdoc, &update)
            .map_err(|e| bad(e.to_string()))?;
        totals.merge(&report.metrics);
        let checks: Vec<UpdateCheckEntry> = names
            .iter()
            .zip(report.scopes.iter().zip(&report.outcomes))
            .map(|(name, (&scope, outcome))| {
                match outcome {
                    FdOutcome::Violated(_) => failed = true,
                    FdOutcome::Unknown { .. } => ran_out = true,
                    _ => {}
                }
                let violation = match outcome {
                    FdOutcome::Violated(v) => Some(v.describe(vdoc.doc())),
                    _ => None,
                };
                UpdateCheckEntry {
                    fd: name.clone(),
                    scope: scope_name(scope).to_string(),
                    check: FdCheckOutcome::from_outcome(name, outcome, violation),
                }
            })
            .collect();
        responses.push(UpdateResponse {
            path: path.clone(),
            version: vdoc.version(),
            touched: report.touched.len(),
            checks,
            all_satisfied: report.all_satisfied(),
            metrics: None,
            phases: None,
        });
    }

    let phases = tracing.finish()?;
    let out = if json {
        let mut members = vec![
            ("path".into(), Json::str(&path)),
            (
                "updates".into(),
                Json::Arr(responses.iter().map(UpdateResponse::to_json).collect()),
            ),
            ("all_satisfied".into(), Json::Bool(checker.all_satisfied())),
        ];
        if flags.stats {
            members.push(("metrics".into(), metrics_to_json(&totals)));
        }
        if let Some(s) = &phases {
            members.push(("phases".into(), phases_to_json(s)));
        }
        format!("{}\n", Json::Obj(members).to_pretty())
    } else {
        let mut out = String::new();
        for (i, resp) in responses.iter().enumerate() {
            let scopes: Vec<&str> = resp.checks.iter().map(|c| c.scope.as_str()).collect();
            let verdict = if resp.all_satisfied {
                "satisfied".to_string()
            } else {
                resp.checks
                    .iter()
                    .filter(|c| c.check.outcome != "satisfied")
                    .map(|c| {
                        format!(
                            "{}: {}{}",
                            c.fd,
                            c.check.outcome.to_uppercase(),
                            c.check
                                .violation
                                .as_deref()
                                .map(|v| format!(" — {v}"))
                                .unwrap_or_default()
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            writeln!(
                out,
                "update {:>4}: touched={} scopes=[{}] {}",
                i + 1,
                resp.touched,
                scopes.join(" "),
                verdict
            )
            .expect("write to string");
        }
        writeln!(
            out,
            "{path}: {} update(s) applied, final state {}",
            responses.len(),
            if checker.all_satisfied() {
                "satisfies every FD"
            } else {
                "has violations"
            }
        )
        .expect("write to string");
        if flags.stats {
            writeln!(out, "stats: {totals}").expect("write to string");
        }
        if let Some(s) = &phases {
            write!(out, "{s}").expect("write to string");
        }
        out
    };
    if failed {
        Err(CliError::Violation(out))
    } else if ran_out {
        Err(CliError::Exhausted(out))
    } else {
        Ok(out)
    }
}

fn cmd_eval(args: &[&str]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let alphabet = Alphabet::new();
    let pattern = parse_corexpath(&alphabet, flags.require("xpath")?).map_err(runtime)?;
    let docs = load_docs(&alphabet, &flags.positional)?;
    let mut out = String::new();
    for (path, doc) in &docs {
        let results = pattern.evaluate(doc);
        writeln!(out, "{path}: {} match(es)", results.len()).expect("write to string");
        for tuple in results {
            for node in tuple {
                writeln!(
                    out,
                    "  {} <{}>",
                    doc.dewey_string(node),
                    doc.label_name(node)
                )
                .expect("write to string");
            }
        }
    }
    Ok(out)
}

/// `rtpcheck pattern parse [--explain] [--format json] EXPR...`: parses
/// textual patterns, prints the canonical form, and with `--explain` the
/// compiled template — the quickest way to see what a pattern means before
/// using it in an FD or a query.
fn cmd_pattern_parse(args: &[&str]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let json = flags.wants_json()?;
    let alphabet = Alphabet::new();
    if flags.positional.is_empty() {
        return Err(usage("pattern parse needs at least one pattern expression"));
    }
    let mut out = String::new();
    let mut responses = Vec::new();
    for expr in &flags.positional {
        let compiled = CompiledPattern::from_text(&alphabet, expr)
            .map_err(|e| CliError::Runtime(render_parse_error(expr, &e)))?;
        let resp = PatternParseResponse::from_compiled(expr, &compiled);
        if json {
            responses.push(resp.to_json());
        } else if flags.explain {
            writeln!(out, "input:     {}", resp.source).expect("write to string");
            writeln!(out, "canonical: {}", resp.canonical).expect("write to string");
            writeln!(
                out,
                "template:  {} node(s), selected {}",
                resp.template_nodes,
                resp.selected
                    .iter()
                    .map(|i| format!("n{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
            .expect("write to string");
            for line in resp.sketch.lines() {
                writeln!(out, "  {line}").expect("write to string");
            }
            for (n, v) in &resp.value_tests {
                writeln!(
                    out,
                    "value test: n{n} = {v:?} (applied as a mapping filter)"
                )
                .expect("write to string");
            }
        } else {
            writeln!(out, "{}", resp.canonical).expect("write to string");
        }
    }
    if json {
        let doc = if responses.len() == 1 {
            responses.pop().expect("one response")
        } else {
            Json::Arr(responses)
        };
        Ok(format!("{}\n", doc.to_pretty()))
    } else {
        Ok(out)
    }
}

/// Renders a [`regtree_pattern::lang::ParseError`] with a caret line
/// pointing at the byte offset in the source.
fn render_parse_error(src: &str, e: &regtree_pattern::lang::ParseError) -> String {
    let mut out = format!("{e}\n  {src}\n  ");
    for _ in 0..e.offset.min(src.len()) {
        out.push(' ');
    }
    out.push('^');
    out
}

fn cmd_independence(args: &[&str]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let json = flags.wants_json()?;
    let tracing = Tracing::from_flags(&flags)?;
    let alphabet = Alphabet::new();
    let fd = parse_fd(&alphabet, flags.require("fd")?).map_err(runtime)?;
    let update_pattern = parse_corexpath(&alphabet, flags.require("update")?).map_err(runtime)?;
    let class = UpdateClass::new(update_pattern).map_err(|e| {
        runtime(format!(
            "{e}; the final CoreXPath step must be predicate-free"
        ))
    })?;
    let (analyzer, with_schema) = build_analyzer(&alphabet, &flags, &tracing)?;
    let analysis = analyzer.independence(&fd, &class);
    let phases = tracing.finish()?;
    let witness_xml = match &analysis.verdict {
        Verdict::Unknown {
            witness: Some(doc), ..
        } => Some(to_xml_with(doc, SerializeOptions { indent: true })),
        _ => None,
    };
    let mut report = IndependenceResponse::from_analysis(&analysis, witness_xml);
    report.metrics = flags.stats.then_some(analysis.metrics);
    report.phases = phases;
    let out = if json {
        format!("{}\n", report.to_json().to_pretty())
    } else {
        let mut out = String::new();
        if report.independent {
            writeln!(
                out,
                "INDEPENDENT: no update of this class can break the FD{}",
                if with_schema {
                    " (under the schema)"
                } else {
                    ""
                }
            )
            .expect("write to string");
        } else if let Some(resource) = analysis.verdict.exhausted() {
            writeln!(
                out,
                "EXHAUSTED: {resource} before the criterion decided — re-run with a larger budget"
            )
            .expect("write to string");
        } else {
            writeln!(
                out,
                "UNKNOWN: the criterion cannot prove independence (IC language nonempty)"
            )
            .expect("write to string");
            if let Some(xml) = &report.witness_xml {
                writeln!(out, "witness document where update and FD interact:\n{xml}")
                    .expect("write to string");
            }
        }
        writeln!(
            out,
            "automaton: {} IC states, size {}, {} product states explored",
            report.ic_states, report.automaton_size, report.explored_states
        )
        .expect("write to string");
        if let Some(m) = &report.metrics {
            writeln!(out, "stats: {m}").expect("write to string");
        }
        if let Some(s) = &report.phases {
            write!(out, "{s}").expect("write to string");
        }
        out
    };
    if report.independent {
        Ok(out)
    } else if report.exhausted.is_some() {
        Err(CliError::Exhausted(out))
    } else {
        Err(CliError::Violation(out))
    }
}

/// Parses a `name = expression` list file (one entry per line; `#` comments).
fn parse_named_list(src: &str) -> Result<Vec<(String, String)>, CliError> {
    let mut out = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, expr) = line
            .split_once('=')
            .ok_or_else(|| runtime(format!("line {}: expected 'name = expr'", lineno + 1)))?;
        out.push((name.trim().to_string(), expr.trim().to_string()));
    }
    if out.is_empty() {
        return Err(runtime("empty list file"));
    }
    Ok(out)
}

/// `rtpcheck fds minimize --fds FILE`: the irredundant core of an FD set
/// with provenance (which kept FDs imply each dropped one). Budget flags
/// govern the implication closure; a run that exhausts its budget prints
/// the sound partial result and exits 3.
fn cmd_fds_minimize(args: &[&str]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let json = flags.wants_json()?;
    let alphabet = Alphabet::new();
    let fd_list = parse_named_list(&read_file(flags.require("fds")?)?)?;
    let mut set = FdSet::new();
    for (name, expr) in &fd_list {
        let fd = parse_fd(&alphabet, expr).map_err(|e| runtime(format!("fd '{name}': {e}")))?;
        set.push(name.clone(), fd);
    }
    let min = set.minimize(&flags.limits()?);
    let out = if json {
        // Machine-readable mode: stdout is exactly one JSON document. On
        // the PARTIAL (exit 3) path the human-readable note goes to stderr,
        // matching the independence/matrix convention.
        if let Some(r) = min.exhausted {
            eprintln!(
                "note: PARTIAL — closure budget exhausted ({r}); recorded \
                 drops are proven, further drops may have been missed"
            );
        }
        format!(
            "{}\n",
            MinimizeResponse::from_minimization(&min, &set)
                .to_json()
                .to_pretty()
        )
    } else {
        let mut out = String::new();
        writeln!(
            out,
            "{} of {} FDs form the irredundant core:",
            min.kept.len(),
            set.len()
        )
        .expect("write to string");
        for &k in &min.kept {
            writeln!(out, "  keep  {}", set.name(k)).expect("write to string");
        }
        for d in &min.dropped {
            let by = if d.by.is_empty() {
                "trivial".to_string()
            } else {
                format!(
                    "implied by {}",
                    d.by.iter()
                        .map(|&j| set.name(j))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            writeln!(out, "  drop  {} ({by})", set.name(d.index)).expect("write to string");
        }
        if let Some(r) = min.exhausted {
            writeln!(
                out,
                "PARTIAL: closure budget exhausted ({r}) — recorded drops are \
                 proven, further drops may have been missed"
            )
            .expect("write to string");
        }
        out
    };
    if min.is_complete() {
        Ok(out)
    } else {
        Err(CliError::Exhausted(out))
    }
}

fn cmd_matrix(args: &[&str]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let alphabet = Alphabet::new();
    let fd_list = parse_named_list(&read_file(flags.require("fds")?)?)?;
    let update_list = parse_named_list(&read_file(flags.require("updates")?)?)?;
    let mut fds = Vec::new();
    for (name, expr) in &fd_list {
        let fd = parse_fd(&alphabet, expr).map_err(|e| runtime(format!("fd '{name}': {e}")))?;
        fds.push((name.clone(), fd));
    }
    let mut classes = Vec::new();
    for (name, expr) in &update_list {
        let pattern = parse_corexpath(&alphabet, expr)
            .map_err(|e| runtime(format!("update '{name}': {e}")))?;
        let class =
            UpdateClass::new(pattern).map_err(|e| runtime(format!("update '{name}': {e}")))?;
        classes.push((name.clone(), class));
    }
    let fd_refs: Vec<(&str, &regtree_core::Fd)> =
        fds.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let class_refs: Vec<(&str, &UpdateClass)> =
        classes.iter().map(|(n, c)| (n.as_str(), c)).collect();
    let json = flags.wants_json()?;
    let tracing = Tracing::from_flags(&flags)?;
    let (analyzer, _) = build_analyzer(&alphabet, &flags, &tracing)?;
    let matrix = if flags.prune {
        analyzer.matrix_pruned(&fd_refs, &class_refs)
    } else {
        analyzer.matrix(&fd_refs, &class_refs)
    };
    let phases = tracing.finish()?;
    let pairs = fd_refs.len() * class_refs.len();
    let exhausted = matrix.exhausted_count();
    let mut totals = RunMetrics::default();
    for cell in &matrix.cells {
        totals.merge(&cell.metrics);
    }
    let out = if json {
        // Machine-readable mode: stdout is exactly one JSON document in the
        // shared `regtree_core::api` shape (the same one `rtpserved` serves).
        let mut resp = MatrixResponse::from_matrix(&matrix);
        resp.metrics = flags.stats.then_some(totals);
        resp.phases = phases.clone();
        format!("{}\n", resp.to_json().to_pretty())
    } else {
        let mut out = matrix.to_string();
        let explored: usize = matrix.cells.iter().map(|c| c.explored_states).sum();
        let total: usize = matrix.cells.iter().map(|c| c.automaton_size).sum();
        writeln!(
            out,
            "\n{} of {pairs} pairs provably independent ({explored} of {total} product states explored)",
            matrix.independent_count()
        )
        .expect("write to string");
        // Every non-independent cell must be rechecked after its update class
        // runs — including Unknown cells whose budget ran out.
        writeln!(
            out,
            "{} of {pairs} pairs must be rechecked after updates{}",
            matrix.recheck_count(),
            if exhausted > 0 {
                format!(" ({exhausted} undecided: budget exhausted, marked RECHECK?)")
            } else {
                String::new()
            }
        )
        .expect("write to string");
        if flags.prune {
            writeln!(
                out,
                "pruning: {} cells computed, {} reused (*), {} rows dropped as implied",
                matrix.computed_count(),
                matrix.reused_count(),
                matrix.implied_row_count()
            )
            .expect("write to string");
        } else if matrix.reused_count() > 0 {
            // Duplicate FD/class pairs share one engine run via the matrix
            // interner even without --prune.
            writeln!(
                out,
                "sharing: {} cells computed, {} reused from identical pairs (*)",
                matrix.computed_count(),
                matrix.reused_count()
            )
            .expect("write to string");
        }
        if flags.stats {
            writeln!(out, "stats: {totals}").expect("write to string");
        }
        if let Some(s) = &phases {
            write!(out, "{s}").expect("write to string");
        }
        out
    };
    if exhausted > 0 {
        Err(CliError::Exhausted(out))
    } else {
        Ok(out)
    }
}

fn cmd_demo() -> Result<String, CliError> {
    let alphabet = regtree_gen::exam_alphabet();
    let doc = regtree_gen::figure1_document(&alphabet);
    let schema = regtree_gen::exam_schema(&alphabet);
    let mut out = String::new();
    writeln!(out, "— Figure 1 document ({} nodes) —", doc.len()).expect("write");
    writeln!(
        out,
        "{}",
        to_xml_with(&doc, SerializeOptions { indent: true })
    )
    .expect("write");
    writeln!(
        out,
        "schema validation: {:?}",
        schema.validate(&doc).is_ok()
    )
    .expect("write");
    for (name, fd) in [
        ("fd1", regtree_gen::fd1(&alphabet)),
        ("fd2", regtree_gen::fd2(&alphabet)),
        ("fd3", regtree_gen::fd3(&alphabet)),
    ] {
        writeln!(
            out,
            "{name}: {}",
            if regtree_core::satisfies(&fd, &doc) {
                "satisfied"
            } else {
                "violated"
            }
        )
        .expect("write");
    }
    let class = regtree_gen::update_class_u(&alphabet);
    let analyzer = Analyzer::builder().schema(schema).build();
    for (name, fd) in [
        ("fd3 vs U", regtree_gen::fd3(&alphabet)),
        ("fd5 vs U", regtree_gen::fd5(&alphabet)),
    ] {
        let a = analyzer.independence(&fd, &class);
        writeln!(
            out,
            "{name} (with schema): {}",
            if a.verdict.is_independent() {
                "INDEPENDENT"
            } else {
                "unknown"
            }
        )
        .expect("write");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(content: &str, ext: &str) -> tempfileish::TempPath {
        tempfileish::write(content, ext)
    }

    /// Minimal self-contained temp-file helper (no external crate).
    mod tempfileish {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static N: AtomicU64 = AtomicU64::new(0);

        pub struct TempPath(pub PathBuf);

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn write(content: &str, ext: &str) -> TempPath {
            let n = N.fetch_add(1, Ordering::SeqCst);
            let mut p = std::env::temp_dir();
            p.push(format!("rtpcheck-test-{}-{n}.{ext}", std::process::id()));
            std::fs::write(&p, content).expect("temp write");
            TempPath(p)
        }
    }

    #[test]
    fn demo_runs() {
        let out = run(&["demo"]).unwrap();
        assert!(out.contains("fd1: satisfied"));
        assert!(out.contains("fd5 vs U (with schema): INDEPENDENT"));
        assert!(out.contains("fd3 vs U (with schema): unknown"));
    }

    #[test]
    fn validate_command() {
        let schema = tmp("root: r\nr: x*\nx: EMPTY\n", "rts");
        let good = tmp("<r><x/></r>", "xml");
        let bad = tmp("<r><y/></r>", "xml");
        let out = run(&[
            "validate",
            "--schema",
            schema.0.to_str().unwrap(),
            good.0.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("valid"));
        let err = run(&[
            "validate",
            "--schema",
            schema.0.to_str().unwrap(),
            bad.0.to_str().unwrap(),
        ]);
        assert!(matches!(err, Err(CliError::Violation(_))));
    }

    #[test]
    fn fd_check_command() {
        let good = tmp(
            "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>1</v></i></s>",
            "xml",
        );
        let bad = tmp(
            "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>2</v></i></s>",
            "xml",
        );
        let fd = "/s : i/k -> i/v";
        let ok = run(&["fd-check", "--fd", fd, good.0.to_str().unwrap()]).unwrap();
        assert!(ok.contains("satisfies"));
        let err = run(&["fd-check", "--fd", fd, bad.0.to_str().unwrap()]);
        assert!(matches!(err, Err(CliError::Violation(_))));
    }

    #[test]
    fn fd_check_accepts_the_textual_pattern_language() {
        // Counting predicate: only items with >= 2 witnesses are in scope.
        let fd = "/s : i[count(w) >= 2]/k -> i[count(w) >= 2]/v";
        let good = tmp(
            "<s><i><w/><w/><k>a</k><v>1</v></i><i><w/><k>a</k><v>2</v></i></s>",
            "xml",
        );
        let ok = run(&["fd-check", "--fd", fd, good.0.to_str().unwrap()]).unwrap();
        assert!(ok.contains("satisfies"), "{ok}");
        let bad = tmp(
            "<s><i><w/><w/><k>a</k><v>1</v></i><i><w/><w/><k>a</k><v>2</v></i></s>",
            "xml",
        );
        let err = run(&["fd-check", "--fd", fd, bad.0.to_str().unwrap()]);
        assert!(matches!(err, Err(CliError::Violation(_))));

        // The same textual grammar works in --fds list files ('=' inside
        // '>=' is past the first '=' the list format splits at).
        let fds = tmp(&format!("counted = {fd}\nplain = /s : i/k -> i/v\n"), "lst");
        let err = run(&[
            "fd-check",
            "--fds",
            fds.0.to_str().unwrap(),
            bad.0.to_str().unwrap(),
        ]);
        let Err(CliError::Violation(out)) = err else {
            panic!("expected violation");
        };
        assert!(out.contains("[counted]: VIOLATED"), "{out}");
        assert!(out.contains("[plain]: VIOLATED"), "{out}");

        // Parse errors surface the byte offset.
        let err = run(&["fd-check", "--fd", "/s : i/k -> ", good.0.to_str().unwrap()]);
        let Err(CliError::Runtime(msg)) = err else {
            panic!("expected runtime error");
        };
        assert!(msg.contains("byte 12"), "{msg}");
    }

    #[test]
    fn pattern_parse_command() {
        // Sugar normalizes to the canonical form.
        let out = run(&["pattern", "parse", "/s//c[at-least 2 child::e]/l"]).unwrap();
        assert_eq!(out, "/s//c[count(e) >= 2]/l\n");

        // --explain adds the compiled template.
        let out = run(&["pattern", "parse", "--explain", "/s/c[@a = \"x\"]"]).unwrap();
        assert!(out.contains("canonical: /s/c[@a = \"x\"]"), "{out}");
        assert!(out.contains("template:"), "{out}");
        assert!(out.contains("--[s/c]--> n1"), "{out}");
        assert!(out.contains("value test: n2 = \"x\""), "{out}");

        // --format json emits the shared api shape.
        let out = run(&["pattern", "parse", "--format", "json", "/s/c"]).unwrap();
        let v = regtree_core::api::Json::parse(&out).unwrap();
        assert_eq!(v.get("canonical").and_then(Json::as_str), Some("/s/c"));
        assert_eq!(v.get("template_nodes").and_then(Json::as_u64), Some(2));

        // Errors point at the offending byte with a caret.
        let err = run(&["pattern", "parse", "/s/[x]"]);
        let Err(CliError::Runtime(msg)) = err else {
            panic!("expected runtime error");
        };
        assert!(msg.contains("byte 3"), "{msg}");
        assert!(
            msg.lines().last().unwrap().trim_end().ends_with('^'),
            "{msg}"
        );
    }

    #[test]
    fn fd_check_updates_command() {
        let doc = tmp(
            "<s><i><k>a</k><v>1</v><note>n</note></i><i><k>a</k><v>1</v><note>n</note></i></s>",
            "xml",
        );
        let fd = "/s : i/k -> i/v";
        // Note edits never touch the FD; the v rewrite breaks it.
        let stream = tmp(
            "# benign edit, then a violating one\n\
             {\"select\": \"/s/i/note\", \"op\": \"set_text\", \"value\": \"m\"}\n\
             {\"select\": \"/s/i/v\", \"op\": \"set_text\", \"value\": \"9\", \"first_only\": true}\n",
            "jsonl",
        );
        let err = run(&[
            "fd-check",
            "--fd",
            fd,
            "--updates",
            stream.0.to_str().unwrap(),
            doc.0.to_str().unwrap(),
        ]);
        let Err(CliError::Violation(out)) = err else {
            panic!("expected violation, got {err:?}");
        };
        assert!(out.contains("scopes=[unaffected] satisfied"), "{out}");
        assert!(out.contains("scopes=[localized] fd: VIOLATED"), "{out}");
        assert!(out.contains("final state has violations"), "{out}");

        // A benign-only stream exits cleanly, and the JSON shape carries
        // the per-update scopes.
        let benign = tmp(
            "{\"select\": \"/s/i/note\", \"op\": \"set_text\", \"value\": \"m\"}\n",
            "jsonl",
        );
        let ok = run(&[
            "fd-check",
            "--fd",
            fd,
            "--updates",
            benign.0.to_str().unwrap(),
            "--format",
            "json",
            doc.0.to_str().unwrap(),
        ])
        .unwrap();
        let v = regtree_core::api::Json::parse(&ok).unwrap();
        assert_eq!(v.get("all_satisfied").and_then(Json::as_bool), Some(true));
        let updates = v.get("updates").unwrap().as_array().unwrap();
        assert_eq!(updates.len(), 1);
        let first = &updates[0];
        assert_eq!(first.get("touched").and_then(Json::as_u64), Some(2));
        let checks = first.get("checks").unwrap().as_array().unwrap();
        assert_eq!(
            checks[0].get("scope").and_then(Json::as_str),
            Some("unaffected")
        );
    }

    #[test]
    fn fd_check_batch_command() {
        let fds = tmp("keyval = /s : i/k -> i/v\nkeyw = /s : i/k -> i/w\n", "lst");
        let good = tmp(
            "<s><i><k>a</k><v>1</v><w>x</w></i><i><k>a</k><v>1</v><w>x</w></i></s>",
            "xml",
        );
        let bad = tmp(
            "<s><i><k>a</k><v>1</v><w>x</w></i><i><k>a</k><v>1</v><w>y</w></i></s>",
            "xml",
        );
        let ok = run(&[
            "fd-check",
            "--fds",
            fds.0.to_str().unwrap(),
            good.0.to_str().unwrap(),
        ])
        .unwrap();
        assert!(ok.contains("[keyval]: satisfies"), "{ok}");
        assert!(ok.contains("[keyw]: satisfies"), "{ok}");
        let err = run(&[
            "fd-check",
            "--fds",
            fds.0.to_str().unwrap(),
            bad.0.to_str().unwrap(),
        ]);
        match err {
            Err(CliError::Violation(out)) => {
                assert!(out.contains("[keyval]: satisfies"), "{out}");
                assert!(out.contains("[keyw]: VIOLATED"), "{out}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn fd_check_budget_exhaustion() {
        let good = tmp(
            "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>1</v></i></s>",
            "xml",
        );
        // A zero memo budget trips on the first memoized candidate list:
        // the outcome must be UNKNOWN (exit 3), never a wrong verdict.
        let err = run(&[
            "fd-check",
            "--fd",
            "/s : i/k -> i/v",
            "--max-memo",
            "0",
            "--stats",
            good.0.to_str().unwrap(),
        ]);
        match err {
            Err(CliError::Exhausted(out)) => {
                assert!(out.contains("UNKNOWN"), "{out}");
                assert!(out.contains("stats:"), "{out}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn eval_command() {
        let doc = tmp("<s><c/><c/></s>", "xml");
        let out = run(&["eval", "--xpath", "/s/c", doc.0.to_str().unwrap()]).unwrap();
        assert!(out.contains("2 match(es)"), "{out}");
    }

    #[test]
    fn independence_command_json() {
        let out = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/archive/entry",
            "--json",
        ])
        .unwrap();
        assert!(out.contains("\"independent\": true"), "{out}");
        assert!(out.contains("\"exhausted\": null"), "{out}");
        // A dependent pair is a reportable failure: exit 1, output intact.
        let err = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/s/i/v",
        ]);
        match err {
            Err(CliError::Violation(out2)) => {
                assert!(out2.contains("UNKNOWN"), "{out2}");
                assert!(out2.contains("witness"), "{out2}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn independence_stats_flag() {
        let out = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/archive/entry",
            "--stats",
        ])
        .unwrap();
        assert!(out.contains("INDEPENDENT"), "{out}");
        assert!(out.contains("stats: states"), "{out}");
    }

    #[test]
    fn independence_budget_exhaustion() {
        // One interned state cannot decide this dependent pair: the run
        // must stop gracefully with an EXHAUSTED report, not a wrong answer.
        let err = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/s/i/v",
            "--max-states",
            "1",
        ]);
        match err {
            Err(CliError::Exhausted(out)) => {
                assert!(out.contains("EXHAUSTED"), "{out}");
                assert!(out.contains("interned-state budget"), "{out}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // Same run in JSON with stats: machine-readable resource + counters.
        let err = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/s/i/v",
            "--max-states",
            "1",
            "--format",
            "json",
            "--stats",
        ]);
        match err {
            Err(CliError::Exhausted(out)) => {
                assert!(out.contains("\"exhausted\": \"states\""), "{out}");
                assert!(out.contains("\"states_interned\""), "{out}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn matrix_command() {
        let fds = tmp("price = /catalog : item/sku -> item/price\n", "lst");
        let ups = tmp(
            "restock = /catalog/item/stock\nreprice = /catalog/item/price\n",
            "lst",
        );
        let out = run(&[
            "matrix",
            "--fds",
            fds.0.to_str().unwrap(),
            "--updates",
            ups.0.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("1 of 2 pairs provably independent"), "{out}");
        assert!(out.contains("1 of 2 pairs must be rechecked"), "{out}");
        assert!(out.contains("RECHECK"), "{out}");
    }

    #[test]
    fn matrix_prune_drops_implied_rows() {
        use regtree_core::validate_json;
        // `weak` is `price` with an extra condition: implied, dropped.
        let fds = tmp(
            "price = /catalog : item/sku -> item/price\n\
             weak = /catalog : item/sku, item/name -> item/price\n",
            "lst",
        );
        let ups = tmp(
            "restock = /catalog/item/stock\nreprice = /catalog/item/price\n",
            "lst",
        );
        let out = run(&[
            "matrix",
            "--prune",
            "--fds",
            fds.0.to_str().unwrap(),
            "--updates",
            ups.0.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("implied"), "{out}");
        assert!(
            out.contains("2 cells computed, 0 reused (*), 1 rows dropped as implied"),
            "{out}"
        );
        // Only the kept implier is ever listed for recheck.
        assert!(out.contains("1 of 4 pairs must be rechecked"), "{out}");

        // JSON mode: provenance is machine-readable and stdout parses.
        let json = run(&[
            "matrix",
            "--prune",
            "--format",
            "json",
            "--stats",
            "--fds",
            fds.0.to_str().unwrap(),
            "--updates",
            ups.0.to_str().unwrap(),
        ])
        .unwrap();
        validate_json(&json).expect("pruned matrix JSON parses");
        assert!(json.contains("\"provenance\": \"implied\""), "{json}");
        assert!(json.contains("\"implied_by\": [\"price\"]"), "{json}");
        assert!(json.contains("\"implied_rows\": 1"), "{json}");
        assert!(json.contains("\"computed_cells\": 2"), "{json}");
        assert!(json.contains("\"verdicts_reused\""), "{json}");
    }

    #[test]
    fn matrix_prune_reuses_verdicts_via_containment() {
        // `wide` marks the whole subtree at item; `narrow` a sub-region.
        // Neither implies the other, but `wide` subsumes `narrow`, so the
        // restock column computes `wide` and reuses for `narrow`.
        let fds = tmp(
            "wide = /catalog : item/sku -> item[N]\n\
             narrow = /catalog : item/sku -> item/price\n",
            "lst",
        );
        let ups = tmp("other = /inventory/pallet\n", "lst");
        let out = run(&[
            "matrix",
            "--prune",
            "--format",
            "json",
            "--fds",
            fds.0.to_str().unwrap(),
            "--updates",
            ups.0.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("\"provenance\": \"reused\""), "{out}");
        assert!(out.contains("\"reused_from\": \"wide\""), "{out}");
        assert!(out.contains("\"reused_cells\": 1"), "{out}");
    }

    #[test]
    fn fds_minimize_command() {
        use regtree_core::validate_json;
        let fds = tmp(
            "base = /s : c/e/d, c/e/m -> c/e/r\n\
             weaker = /s : c/e/d, c/e/m, c/x -> c/e/r\n\
             other = /s : c/n -> c/z\n",
            "lst",
        );
        let out = run(&["fds", "minimize", "--fds", fds.0.to_str().unwrap()]).unwrap();
        assert!(
            out.contains("2 of 3 FDs form the irredundant core"),
            "{out}"
        );
        assert!(out.contains("keep  base"), "{out}");
        assert!(out.contains("keep  other"), "{out}");
        assert!(out.contains("drop  weaker (implied by base)"), "{out}");

        let json = run(&[
            "fds",
            "minimize",
            "--format",
            "json",
            "--fds",
            fds.0.to_str().unwrap(),
        ])
        .unwrap();
        validate_json(&json).expect("minimize JSON parses");
        assert!(json.contains("\"kept\": [\"base\", \"other\"]"), "{json}");
        assert!(json.contains("\"implied_by\": [\"base\"]"), "{json}");
        assert!(json.contains("\"complete\": true"), "{json}");

        // A zero deadline exhausts the closure: exit 3 with a sound
        // partial result (nothing dropped).
        let err = run(&[
            "fds",
            "minimize",
            "--deadline-ms",
            "0",
            "--fds",
            fds.0.to_str().unwrap(),
        ]);
        match err {
            Err(CliError::Exhausted(out)) => {
                assert!(out.contains("PARTIAL"), "{out}");
                assert!(
                    out.contains("3 of 3 FDs form the irredundant core"),
                    "{out}"
                );
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }

        // Usage errors keep exit 2.
        assert!(matches!(run(&["fds", "minimize"]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["fds"]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["fds", "maximize"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn matrix_budget_exhaustion_counts_as_recheck() {
        let fds = tmp("price = /catalog : item/sku -> item/price\n", "lst");
        let ups = tmp("restock = /catalog/item/stock\n", "lst");
        let err = run(&[
            "matrix",
            "--fds",
            fds.0.to_str().unwrap(),
            "--updates",
            ups.0.to_str().unwrap(),
            "--max-states",
            "1",
        ]);
        match err {
            Err(CliError::Exhausted(out)) => {
                // The pair is provably independent with a real budget, but a
                // 1-state cap leaves it undecided — and undecided means it
                // must be counted as a recheck, never as independent.
                assert!(out.contains("0 of 1 pairs provably independent"), "{out}");
                assert!(out.contains("1 of 1 pairs must be rechecked"), "{out}");
                assert!(out.contains("RECHECK?"), "{out}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn independence_matrix_command_with_schema() {
        let fds = tmp("price = /catalog : item/sku -> item/price\n", "lst");
        let ups = tmp("restock = /catalog/item/stock\n", "lst");
        let schema = tmp(
            "root: catalog\ncatalog: item*\nitem: sku price stock\nsku: #text\nprice: #text\nstock: #text\n",
            "rts",
        );
        let out = run(&[
            "independence-matrix",
            "--fds",
            fds.0.to_str().unwrap(),
            "--updates",
            ups.0.to_str().unwrap(),
            "--schema",
            schema.0.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("1 of 1 pairs provably independent"), "{out}");
        assert!(out.contains("product states explored"), "{out}");
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["validate", "--schema"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["fd-check", "--fd", "/s : a -> b"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&[
                "independence",
                "--fd",
                "/s : a -> b",
                "--update",
                "/s/a",
                "--max-states",
                "lots"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&[
                "independence",
                "--fd",
                "/s : a -> b",
                "--update",
                "/s/a",
                "--format",
                "xml"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn fd_check_json_stdout_is_pure_json() {
        use regtree_core::validate_json;
        let good = tmp(
            "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>1</v></i></s>",
            "xml",
        );
        let bad = tmp(
            "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>2</v></i></s>",
            "xml",
        );
        let out = run(&[
            "fd-check",
            "--fd",
            "/s : i/k -> i/v",
            "--format",
            "json",
            "--stats",
            good.0.to_str().unwrap(),
        ])
        .unwrap();
        validate_json(&out).unwrap_or_else(|e| panic!("stdout is not JSON: {e}\n{out}"));
        assert!(out.contains("\"outcome\": \"satisfied\""), "{out}");
        assert!(out.contains("\"all_satisfied\": true"), "{out}");
        assert!(out.contains("\"memo_hits\""), "{out}");
        // A violation still yields exactly one JSON document on stdout.
        let err = run(&[
            "fd-check",
            "--fd",
            "/s : i/k -> i/v",
            "--format",
            "json",
            bad.0.to_str().unwrap(),
        ]);
        match err {
            Err(CliError::Violation(out)) => {
                validate_json(&out).unwrap_or_else(|e| panic!("stdout is not JSON: {e}\n{out}"));
                assert!(out.contains("\"outcome\": \"violated\""), "{out}");
                assert!(out.contains("\"violation\": \""), "{out}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn fd_check_json_exhaustion_is_pure_json() {
        use regtree_core::validate_json;
        let good = tmp(
            "<s><i><k>a</k><v>1</v></i><i><k>a</k><v>1</v></i></s>",
            "xml",
        );
        let err = run(&[
            "fd-check",
            "--fd",
            "/s : i/k -> i/v",
            "--max-memo",
            "0",
            "--format",
            "json",
            good.0.to_str().unwrap(),
        ]);
        match err {
            Err(CliError::Exhausted(out)) => {
                validate_json(&out).unwrap_or_else(|e| panic!("stdout is not JSON: {e}\n{out}"));
                assert!(out.contains("\"outcome\": \"unknown\""), "{out}");
                assert!(out.contains("\"exhausted\": true"), "{out}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn matrix_json_stdout_is_pure_json() {
        use regtree_core::validate_json;
        let fds = tmp("price = /catalog : item/sku -> item/price\n", "lst");
        let ups = tmp(
            "restock = /catalog/item/stock\nreprice = /catalog/item/price\n",
            "lst",
        );
        let out = run(&[
            "matrix",
            "--fds",
            fds.0.to_str().unwrap(),
            "--updates",
            ups.0.to_str().unwrap(),
            "--format",
            "json",
            "--stats",
        ])
        .unwrap();
        validate_json(&out).unwrap_or_else(|e| panic!("stdout is not JSON: {e}\n{out}"));
        assert!(out.contains("\"verdict\": \"independent\""), "{out}");
        assert!(out.contains("\"verdict\": \"recheck\""), "{out}");
        assert!(out.contains("\"independent_pairs\": 1"), "{out}");
        assert!(out.contains("\"recheck_pairs\": 1"), "{out}");
    }

    #[test]
    fn independence_trace_writes_loadable_chrome_json() {
        use regtree_core::validate_json;
        let trace = tmp("", "json");
        let out = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/archive/entry",
            "--trace",
            trace.0.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("INDEPENDENT"), "{out}");
        let written = std::fs::read_to_string(&trace.0).expect("trace file written");
        validate_json(&written)
            .unwrap_or_else(|e| panic!("trace is not valid JSON: {e}\n{written}"));
        assert!(written.contains("\"traceEvents\""), "{written}");
        assert!(written.contains("\"ph\":\"B\""), "{written}");
        assert!(written.contains("\"ph\":\"E\""), "{written}");
        assert!(written.contains("ic_search"), "{written}");
    }

    #[test]
    fn independence_trace_written_even_when_exhausted() {
        let trace = tmp("", "json");
        let err = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/s/i/v",
            "--max-states",
            "1",
            "--trace",
            trace.0.to_str().unwrap(),
            "--trace-format",
            "jsonl",
        ]);
        assert!(matches!(err, Err(CliError::Exhausted(_))), "{err:?}");
        let written = std::fs::read_to_string(&trace.0).expect("trace file written");
        assert!(
            written.lines().any(|l| l.contains("exhausted")),
            "{written}"
        );
    }

    #[test]
    fn stats_verbose_prints_phase_table() {
        let out = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/archive/entry",
            "--stats-verbose",
        ])
        .unwrap();
        assert!(out.contains("phase"), "{out}");
        assert!(out.contains("ic_search"), "{out}");
        assert!(out.contains("state_interned"), "{out}");
    }

    #[test]
    fn stats_verbose_json_embeds_phases() {
        use regtree_core::validate_json;
        let out = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/archive/entry",
            "--format",
            "json",
            "--stats-verbose",
        ])
        .unwrap();
        validate_json(&out).unwrap_or_else(|e| panic!("stdout is not JSON: {e}\n{out}"));
        assert!(out.contains("\"phases\""), "{out}");
        assert!(out.contains("\"ic_search\""), "{out}");
        assert!(out.contains("\"state_interned\""), "{out}");
    }

    #[test]
    fn trace_format_without_trace_is_usage_error() {
        let err = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/archive/entry",
            "--trace-format",
            "jsonl",
        ]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
        let err = run(&[
            "independence",
            "--fd",
            "/s : i/k -> i/v",
            "--update",
            "/archive/entry",
            "--trace",
            "/tmp/t.json",
            "--trace-format",
            "perfetto",
        ]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
    }
}
