//! Regular tree patterns (Gire & Idabal 2010, Definition 1–2).
//!
//! The paper's uniform formalism: an n-ary **regular tree pattern** is a
//! tree-shaped template whose edges carry proper regular expressions over
//! XML labels, together with a selected tuple of template nodes. Evaluated
//! on a document it returns the tuples of sub-trees rooted at the selected
//! images, over all *mappings* (embeddings respecting document order,
//! edge languages, and sibling-path disjointness).
//!
//! * [`Template`]/[`RegularTreePattern`] — construction APIs;
//! * [`eval`] — the mapping enumerator (Definition 2 semantics);
//! * [`compile`] — pattern → bottom-up tree automaton (`A_R`, the first
//!   stage of Proposition 3), with optional marking of selected subtrees
//!   used by the independence criterion;
//! * [`corexpath`] — positive CoreXPath queries as patterns.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod compile;
pub mod corexpath;
pub mod eval;
pub mod pattern;
pub mod template;

pub use batch::{evaluate_many, parallel_map};
pub use compile::{compile_pattern, compile_template_plain, PatternAutomaton, StateRole};
pub use corexpath::{parse_corexpath, XPathError};
pub use eval::{
    enumerate_mappings, enumerate_mappings_governed, enumerate_mappings_indexed,
    enumerate_mappings_nfa, evaluate, evaluate_governed, evaluate_indexed, project_mappings,
    project_mappings_anchored_governed, project_mappings_governed, project_mappings_indexed,
    Mapping,
};
pub use pattern::{PatternError, RegularTreePattern};
pub use template::{Template, TemplateError, TemplateNodeId};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regtree_alphabet::{Alphabet, Symbol};
    use regtree_xml::{document_from_specs, Document, TreeSpec};

    fn alpha() -> Alphabet {
        Alphabet::with_labels(["a", "b", "c"])
    }

    /// Random documents over three element labels (plus occasional text).
    fn arb_doc() -> impl Strategy<Value = Document> {
        let leaf = prop_oneof![
            (0u32..3).prop_map(|i| TreeSpec::elem(Symbol(i + 2), vec![])),
            Just(TreeSpec::text("t")),
        ];
        let spec = leaf.prop_recursive(3, 20, 3, |inner| {
            ((0u32..3), prop::collection::vec(inner, 0..3))
                .prop_map(|(i, children)| TreeSpec::elem(Symbol(i + 2), children))
        });
        prop::collection::vec(spec, 0..3).prop_map(|tops| document_from_specs(alpha(), &tops))
    }

    /// Random small edge regexes (always proper).
    fn arb_edge() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string()),
            Just("a/b".to_string()),
            Just("(a|b)".to_string()),
            Just("_".to_string()),
            Just("_*/a".to_string()),
            Just("a+".to_string()),
            Just("(a|b)/c?".to_string()),
        ]
    }

    /// Random templates: a root plus up to 4 nodes attached to random
    /// earlier nodes.
    fn arb_pattern() -> impl Strategy<Value = RegularTreePattern> {
        (
            prop::collection::vec((arb_edge(), any::<prop::sample::Index>()), 1..5),
            any::<prop::sample::Index>(),
        )
            .prop_map(|(edges, sel)| {
                let a = alpha();
                let mut t = Template::new(a);
                let mut nodes = vec![t.root()];
                for (regex, parent) in edges {
                    let p = nodes[parent.index(nodes.len())];
                    let n = t.add_child_str(p, &regex).expect("edges are proper");
                    nodes.push(n);
                }
                let selected = nodes[1 + sel.index(nodes.len() - 1)];
                RegularTreePattern::monadic(t, selected).expect("valid")
            })
    }

    /// Checks the four conditions of Definition 2 directly on a mapping.
    fn check_definition2(template: &Template, doc: &Document, m: &Mapping) -> Result<(), String> {
        // (1) root to root
        if m.image(template.root()) != doc.root() {
            return Err("root not mapped to root".into());
        }
        // (2) document order preservation over template preorder
        let order = template.preorder();
        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                let (a, b) = (m.image(order[i]), m.image(order[j]));
                if doc.doc_order(a, b) != std::cmp::Ordering::Less {
                    return Err(format!("order violated between t{i} and t{j}"));
                }
            }
        }
        for w in template.preorder() {
            if w == template.root() {
                continue;
            }
            let parent = template.parent(w).unwrap();
            let (u, v) = (m.image(parent), m.image(w));
            // (3) edge path word in the edge language
            let labels = doc
                .labels_on_path(u, v)
                .ok_or_else(|| "image not a strict descendant".to_string())?;
            let word: Vec<u32> = labels.iter().map(|s| s.0).collect();
            if !template.edge_nfa(w).unwrap().accepts(&word) {
                return Err("edge word not in edge language".into());
            }
            // (4) sibling-edge paths share no prefix
            for &sib in template.children(parent) {
                if sib == w {
                    continue;
                }
                let b1 = doc.branch_child(u, m.image(w)).unwrap();
                let b2 = doc.branch_child(u, m.image(sib)).unwrap();
                if b1 == b2 {
                    return Err("sibling paths share a prefix".into());
                }
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Every enumerated mapping satisfies Definition 2 verbatim.
        #[test]
        fn mappings_satisfy_definition2(p in arb_pattern(), doc in arb_doc()) {
            for m in p.mappings(&doc) {
                if let Err(e) = check_definition2(p.template(), &doc, &m) {
                    prop_assert!(false, "{}", e);
                }
            }
        }

        /// The compiled automaton accepts exactly the documents with ≥1
        /// mapping.
        #[test]
        fn automaton_matches_evaluator(p in arb_pattern(), doc in arb_doc()) {
            let has_mapping = !p.mappings(&doc).is_empty();
            let plain = compile_pattern(&p, false);
            prop_assert_eq!(plain.accepts(&doc), has_mapping);
            let marked = compile_pattern(&p, true);
            prop_assert_eq!(marked.accepts(&doc), has_mapping);
        }

        /// Mappings are pairwise distinct and evaluation deduplicates.
        #[test]
        fn evaluation_deduplicates(p in arb_pattern(), doc in arb_doc()) {
            let maps = p.mappings(&doc);
            for i in 0..maps.len() {
                for j in (i + 1)..maps.len() {
                    prop_assert_ne!(&maps[i], &maps[j]);
                }
            }
            let eval = p.evaluate(&doc);
            let mut uniq = eval.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), eval.len());
        }

        /// Traces are ancestor-closed subtrees containing all images.
        #[test]
        fn traces_are_subtrees(p in arb_pattern(), doc in arb_doc()) {
            for m in p.mappings(&doc) {
                let trace = m.trace_nodes(&doc);
                for &n in &trace {
                    if let Some(parent) = doc.parent(n) {
                        prop_assert!(trace.contains(&parent));
                    }
                }
                for &img in m.images() {
                    prop_assert!(trace.contains(&img));
                }
            }
        }
    }
}
