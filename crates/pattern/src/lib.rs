//! Regular tree patterns (Gire & Idabal 2010, Definition 1–2).
//!
//! The paper's uniform formalism: an n-ary **regular tree pattern** is a
//! tree-shaped template whose edges carry proper regular expressions over
//! XML labels, together with a selected tuple of template nodes. Evaluated
//! on a document it returns the tuples of sub-trees rooted at the selected
//! images, over all *mappings* (embeddings respecting document order,
//! edge languages, and sibling-path disjointness).
//!
//! * [`Template`]/[`RegularTreePattern`] — construction APIs;
//! * [`eval`] — the mapping enumerator (Definition 2 semantics);
//! * [`compile`] — pattern → bottom-up tree automaton (`A_R`, the first
//!   stage of Proposition 3), with optional marking of selected subtrees
//!   used by the independence criterion;
//! * [`corexpath`] — positive CoreXPath queries as patterns;
//! * [`lang`] — the richer textual pattern language (counting predicates,
//!   value tests, round-tripping printer, spanned diagnostics); see
//!   `docs/PATTERN_LANGUAGE.md`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod compile;
pub mod corexpath;
pub mod eval;
pub mod lang;
pub mod pattern;
pub mod template;

pub use batch::{evaluate_many, parallel_map};
pub use compile::{compile_pattern, compile_template_plain, PatternAutomaton, StateRole};
pub use corexpath::{parse_corexpath, XPathError};
pub use eval::{
    enumerate_mappings, enumerate_mappings_governed, enumerate_mappings_indexed,
    enumerate_mappings_nfa, evaluate, evaluate_governed, evaluate_indexed, project_mappings,
    project_mappings_anchored_governed, project_mappings_governed, project_mappings_indexed,
    Mapping,
};
pub use lang::{parse_pattern, CompiledPattern};
pub use pattern::{PatternError, RegularTreePattern};
pub use template::{Template, TemplateError, TemplateNodeId};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regtree_alphabet::{Alphabet, Symbol};
    use regtree_xml::{document_from_specs, Document, TreeSpec};

    fn alpha() -> Alphabet {
        Alphabet::with_labels(["a", "b", "c"])
    }

    /// Random documents over three element labels (plus occasional text).
    fn arb_doc() -> impl Strategy<Value = Document> {
        let leaf = prop_oneof![
            (0u32..3).prop_map(|i| TreeSpec::elem(Symbol(i + 2), vec![])),
            Just(TreeSpec::text("t")),
        ];
        let spec = leaf.prop_recursive(3, 20, 3, |inner| {
            ((0u32..3), prop::collection::vec(inner, 0..3))
                .prop_map(|(i, children)| TreeSpec::elem(Symbol(i + 2), children))
        });
        prop::collection::vec(spec, 0..3).prop_map(|tops| document_from_specs(alpha(), &tops))
    }

    /// Random small edge regexes (always proper).
    fn arb_edge() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string()),
            Just("a/b".to_string()),
            Just("(a|b)".to_string()),
            Just("_".to_string()),
            Just("_*/a".to_string()),
            Just("a+".to_string()),
            Just("(a|b)/c?".to_string()),
        ]
    }

    /// Random templates: a root plus up to 4 nodes attached to random
    /// earlier nodes.
    fn arb_pattern() -> impl Strategy<Value = RegularTreePattern> {
        (
            prop::collection::vec((arb_edge(), any::<prop::sample::Index>()), 1..5),
            any::<prop::sample::Index>(),
        )
            .prop_map(|(edges, sel)| {
                let a = alpha();
                let mut t = Template::new(a);
                let mut nodes = vec![t.root()];
                for (regex, parent) in edges {
                    let p = nodes[parent.index(nodes.len())];
                    let n = t.add_child_str(p, &regex).expect("edges are proper");
                    nodes.push(n);
                }
                let selected = nodes[1 + sel.index(nodes.len() - 1)];
                RegularTreePattern::monadic(t, selected).expect("valid")
            })
    }

    /// Checks the four conditions of Definition 2 directly on a mapping.
    fn check_definition2(template: &Template, doc: &Document, m: &Mapping) -> Result<(), String> {
        // (1) root to root
        if m.image(template.root()) != doc.root() {
            return Err("root not mapped to root".into());
        }
        // (2) document order preservation over template preorder
        let order = template.preorder();
        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                let (a, b) = (m.image(order[i]), m.image(order[j]));
                if doc.doc_order(a, b) != std::cmp::Ordering::Less {
                    return Err(format!("order violated between t{i} and t{j}"));
                }
            }
        }
        for w in template.preorder() {
            if w == template.root() {
                continue;
            }
            let parent = template.parent(w).unwrap();
            let (u, v) = (m.image(parent), m.image(w));
            // (3) edge path word in the edge language
            let labels = doc
                .labels_on_path(u, v)
                .ok_or_else(|| "image not a strict descendant".to_string())?;
            let word: Vec<u32> = labels.iter().map(|s| s.0).collect();
            if !template.edge_nfa(w).unwrap().accepts(&word) {
                return Err("edge word not in edge language".into());
            }
            // (4) sibling-edge paths share no prefix
            for &sib in template.children(parent) {
                if sib == w {
                    continue;
                }
                let b1 = doc.branch_child(u, m.image(w)).unwrap();
                let b2 = doc.branch_child(u, m.image(sib)).unwrap();
                if b1 == b2 {
                    return Err("sibling paths share a prefix".into());
                }
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Every enumerated mapping satisfies Definition 2 verbatim.
        #[test]
        fn mappings_satisfy_definition2(p in arb_pattern(), doc in arb_doc()) {
            for m in p.mappings(&doc) {
                if let Err(e) = check_definition2(p.template(), &doc, &m) {
                    prop_assert!(false, "{}", e);
                }
            }
        }

        /// The compiled automaton accepts exactly the documents with ≥1
        /// mapping.
        #[test]
        fn automaton_matches_evaluator(p in arb_pattern(), doc in arb_doc()) {
            let has_mapping = !p.mappings(&doc).is_empty();
            let plain = compile_pattern(&p, false);
            prop_assert_eq!(plain.accepts(&doc), has_mapping);
            let marked = compile_pattern(&p, true);
            prop_assert_eq!(marked.accepts(&doc), has_mapping);
        }

        /// Mappings are pairwise distinct and evaluation deduplicates.
        #[test]
        fn evaluation_deduplicates(p in arb_pattern(), doc in arb_doc()) {
            let maps = p.mappings(&doc);
            for i in 0..maps.len() {
                for j in (i + 1)..maps.len() {
                    prop_assert_ne!(&maps[i], &maps[j]);
                }
            }
            let eval = p.evaluate(&doc);
            let mut uniq = eval.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), eval.len());
        }

        /// Traces are ancestor-closed subtrees containing all images.
        #[test]
        fn traces_are_subtrees(p in arb_pattern(), doc in arb_doc()) {
            for m in p.mappings(&doc) {
                let trace = m.trace_nodes(&doc);
                for &n in &trace {
                    if let Some(parent) = doc.parent(n) {
                        prop_assert!(trace.contains(&parent));
                    }
                }
                for &img in m.images() {
                    prop_assert!(trace.contains(&img));
                }
            }
        }
    }

    // ---- textual pattern language ------------------------------------

    fn arb_lang_name() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("long-name.x".to_string()),
            Just("_u2".to_string()),
        ]
    }

    fn arb_lang_test() -> impl Strategy<Value = lang::NameTest> {
        // The vendored `prop_oneof!` has no weighted arms; bias toward
        // plain names by selecting a shape index with uneven ranges.
        (0u8..6, arb_lang_name()).prop_map(|(shape, name)| match shape {
            0 => lang::NameTest::Wildcard,
            1 => lang::NameTest::Attribute(name),
            2 => lang::NameTest::Text,
            _ => lang::NameTest::Name(name),
        })
    }

    fn arb_lang_axis() -> impl Strategy<Value = lang::Axis> {
        (0u8..4).prop_map(|shape| match shape {
            0 => lang::Axis::Descendant,
            _ => lang::Axis::Child,
        })
    }

    /// Random steps over the whole grammar: nested predicates (existence,
    /// value tests with escapable strings, counting) up to depth 3.
    fn arb_lang_step() -> impl Strategy<Value = lang::Step> {
        let leaf = (arb_lang_axis(), arb_lang_test()).prop_map(|(axis, test)| lang::Step {
            axis,
            test,
            predicates: vec![],
        });
        leaf.prop_recursive(3, 12, 3, |inner| {
            let relpath =
                prop::collection::vec(inner, 1..3).prop_map(|steps| lang::RelPath { steps });
            let pred =
                (0u8..4, relpath, "[a-z \"\\\\]{0,6}", 0usize..4).prop_map(|(shape, p, v, n)| {
                    match shape {
                        0 => lang::Predicate::ValueEq(p, v),
                        1 => lang::Predicate::AtLeast(n, p),
                        _ => lang::Predicate::Exists(p),
                    }
                });
            (
                arb_lang_axis(),
                arb_lang_test(),
                prop::collection::vec(pred, 0..3),
            )
                .prop_map(|(axis, test, predicates)| lang::Step {
                    axis,
                    test,
                    predicates,
                })
        })
    }

    fn arb_lang_pattern() -> impl Strategy<Value = lang::Pattern> {
        prop::collection::vec(arb_lang_step(), 1..4).prop_map(|steps| lang::Pattern { steps })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(500))]

        /// print → parse → compile round-trips: the re-parsed AST is equal
        /// and the compiled templates are structurally identical.
        #[test]
        fn textual_patterns_round_trip(p in arb_lang_pattern()) {
            let text = p.to_text();
            let reparsed = lang::parse_pattern(&text)
                .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
            prop_assert_eq!(&reparsed, &p, "{}", text);
            let a = alpha();
            let direct = p.compile(&a).expect("compiles");
            let via_text = reparsed.compile(&a).expect("compiles");
            prop_assert_eq!(
                direct.pattern().template().sketch(),
                via_text.pattern().template().sketch()
            );
            prop_assert_eq!(direct.value_tests(), via_text.value_tests());
            // Printing is idempotent: the canonical form is a fixed point.
            prop_assert_eq!(reparsed.to_text(), text);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// `[count(p) >= n]` agrees with the naive count-and-filter oracle
        /// on random documents for n ∈ {0, 1, 2, 5}.
        #[test]
        fn counting_predicates_match_the_naive_oracle(
            doc in arb_doc(),
            n in (0u8..4).prop_map(|i| [0usize, 1, 2, 5][i as usize]),
        ) {
            let a = alpha();
            for (outer, inner) in [("a", "b"), ("b", "c"), ("a", "a")] {
                let src = format!("/{outer}[count({inner}) >= {n}]");
                let p = lang::CompiledPattern::from_text(&a, &src).expect("parses");
                let mut got: Vec<_> = p.evaluate(&doc).into_iter().map(|t| t[0]).collect();
                got.sort();
                // Oracle: outer-labeled children of the root with at least
                // n inner-labeled children (counting predicates demand n
                // distinct witnessing subtrees; for a single-label path
                // those are exactly the labeled children).
                let mut want: Vec<_> = doc
                    .children(doc.root())
                    .iter()
                    .copied()
                    .filter(|&c| &*doc.label_name(c) == outer)
                    .filter(|&c| {
                        doc.children(c)
                            .iter()
                            .filter(|&&k| &*doc.label_name(k) == inner)
                            .count()
                            >= n
                    })
                    .collect();
                want.sort();
                prop_assert_eq!(&got, &want, "{} on n={}", src, n);
            }
        }
    }
}
