//! Batch evaluation over scoped worker threads.
//!
//! Pattern evaluation is read-only over immutable documents, so batches
//! parallelize trivially: a pool of scoped threads pulls work items off an
//! atomic counter and writes results into per-item slots. No work is
//! shipped across an `unsafe` boundary — `std::thread::scope` proves the
//! borrows outlive the workers.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use regtree_xml::{Document, LabelIndex, NodeId};

use crate::eval::evaluate_indexed;
use crate::pattern::RegularTreePattern;

/// Applies `f` to every item on a scoped thread pool, preserving order.
///
/// Uses one worker per available core (capped at the item count); with one
/// item or one core it degenerates to a sequential map, so callers never
/// pay thread spawn-up for trivial batches.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Evaluates every pattern on every document, in parallel over documents.
///
/// Returns `result[d][p]` = rows selected by `patterns[p]` on `docs[d]`.
/// Each worker builds the document's [`LabelIndex`] once and amortizes it
/// across all patterns, so the per-document cost is one index pass plus the
/// pattern evaluations themselves.
pub fn evaluate_many(
    patterns: &[RegularTreePattern],
    docs: &[Document],
) -> Vec<Vec<Vec<Vec<NodeId>>>> {
    parallel_map(docs, |doc| {
        let index = LabelIndex::build(doc);
        patterns
            .iter()
            .map(|p| evaluate_indexed(p, doc, &index))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(parallel_map(&[] as &[usize], |&i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(&[7usize], |&i| i + 1), vec![8]);
    }

    #[test]
    fn evaluate_many_matches_sequential() {
        let a = Alphabet::new();
        let docs: Vec<Document> = [
            "<session><candidate><exam/></candidate></session>",
            "<session><candidate><exam/><exam/></candidate></session>",
            "<other/>",
        ]
        .iter()
        .map(|s| parse_document(&a, s).unwrap())
        .collect();
        let mut t = Template::new(a.clone());
        let e = t.add_child_str(t.root(), "session/candidate/exam").unwrap();
        let p1 = RegularTreePattern::monadic(t, e).unwrap();
        let mut t2 = Template::new(a);
        let c = t2.add_child_str(t2.root(), "session/candidate").unwrap();
        let p2 = RegularTreePattern::monadic(t2, c).unwrap();
        let patterns = vec![p1, p2];
        let batch = evaluate_many(&patterns, &docs);
        assert_eq!(batch.len(), docs.len());
        for (d, doc) in docs.iter().enumerate() {
            for (p, pat) in patterns.iter().enumerate() {
                assert_eq!(batch[d][p], pat.evaluate(doc), "doc {d}, pattern {p}");
            }
        }
    }
}
