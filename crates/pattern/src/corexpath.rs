//! Positive CoreXPath → regular tree patterns.
//!
//! The paper's companion work (\[10\]) shows regular tree patterns express all
//! queries of the *positive* fragment of CoreXPath, and the conclusion
//! applies the independence results to update classes given in that
//! fragment. This module implements the translation for a practical subset:
//!
//! ```text
//! path  := ('/' | '//') step (('/' | '//') step)*
//! step  := nametest pred*
//! nametest := NAME | '@' NAME | 'text()' | '*'
//! pred  := '[' relpath (and relpath)* ']'
//! relpath := ('.//' )? step (('/' | '//') step)*
//! ```
//!
//! Semantics caveats (inherent to the formalism — regular tree patterns are
//! *incomparable* with full XPath, Section 4 of the paper):
//!
//! * sibling branches of a template must map to **distinct** children in
//!   **document order**, so `a[b]/c` requires the witnessing `b` subtree to
//!   precede the `c` subtree and to be disjoint from it;
//! * predicates are existential and positive (no negation, position(), etc.).

use std::fmt;

use regtree_alphabet::Alphabet;
use regtree_automata::Regex;

use crate::pattern::RegularTreePattern;
use crate::template::{Template, TemplateNodeId};

/// Error raised parsing a CoreXPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte position.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for XPathError {}

/// One parsed step.
#[derive(Debug, Clone)]
struct Step {
    /// Reached through a descendant (`//`) axis?
    descendant: bool,
    /// Label test (`None` = `*`).
    test: Option<String>,
    /// Existential predicate paths (conjunction).
    predicates: Vec<Vec<Step>>,
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> XPathError {
        XPathError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn name(&mut self) -> Result<String, XPathError> {
        let bytes = self.rest().as_bytes();
        let mut len = 0;
        while len < bytes.len()
            && (bytes[len].is_ascii_alphanumeric() || matches!(bytes[len], b'_' | b'-' | b'.'))
        {
            len += 1;
        }
        if len == 0 {
            return Err(self.err("expected a name"));
        }
        let name = self.rest()[..len].to_string();
        self.pos += len;
        Ok(name)
    }

    fn parse_steps(&mut self, stop_at: &[char]) -> Result<Vec<Step>, XPathError> {
        let mut steps = Vec::new();
        loop {
            let descendant = if self.eat("//") {
                true
            } else if self.eat("/") {
                false
            } else if steps.is_empty() {
                // Relative path inside a predicate may begin with `.//` or a
                // bare step (child axis).
                self.eat(".//")
            } else {
                break;
            };
            let step = self.parse_step(descendant)?;
            steps.push(step);
            // Peek: another axis separator continues the path.
            let c = self.rest().chars().next();
            match c {
                Some('/') => continue,
                Some(ch) if stop_at.contains(&ch) => break,
                None => break,
                Some(ch) => {
                    return Err(self.err(format!("unexpected character {ch:?}")));
                }
            }
        }
        if steps.is_empty() {
            return Err(self.err("empty path"));
        }
        Ok(steps)
    }

    fn parse_step(&mut self, descendant: bool) -> Result<Step, XPathError> {
        let test = if self.eat("*") {
            None
        } else if self.eat("text()") {
            Some(Alphabet::TEXT_NAME.to_string())
        } else if self.eat("@") {
            Some(format!("@{}", self.name()?))
        } else {
            Some(self.name()?)
        };
        let mut predicates = Vec::new();
        while self.eat("[") {
            loop {
                let p = self.parse_steps(&[']', ' '])?;
                predicates.push(p);
                // optional conjunction
                let mut saw_and = false;
                while self.eat(" ") {
                    saw_and = true;
                }
                if saw_and && self.eat("and") {
                    while self.eat(" ") {}
                    continue;
                }
                break;
            }
            if !self.eat("]") {
                return Err(self.err("expected ']'"));
            }
        }
        Ok(Step {
            descendant,
            test,
            predicates,
        })
    }
}

/// Parses a positive CoreXPath expression into a monadic pattern selecting
/// the nodes reached by the path.
pub fn parse_corexpath(alphabet: &Alphabet, src: &str) -> Result<RegularTreePattern, XPathError> {
    let mut cursor = Cursor { src, pos: 0 };
    if !src.starts_with('/') {
        return Err(cursor.err("CoreXPath queries must be absolute (start with '/')"));
    }
    let steps = cursor.parse_steps(&[])?;
    if cursor.pos != src.len() {
        return Err(cursor.err("trailing input"));
    }
    let mut template = Template::new(alphabet.clone());
    let root = template.root();
    let selected = build_steps(alphabet, &mut template, root, &steps).map_err(|m| XPathError {
        position: src.len(),
        message: m,
    })?;
    RegularTreePattern::monadic(template, selected).map_err(|e| XPathError {
        position: src.len(),
        message: e.to_string(),
    })
}

/// Appends the steps below `from`, returning the template node of the final
/// step. Consecutive predicate-free steps merge into a single edge regex.
fn build_steps(
    alphabet: &Alphabet,
    template: &mut Template,
    from: TemplateNodeId,
    steps: &[Step],
) -> Result<TemplateNodeId, String> {
    let mut current = from;
    let mut pending: Vec<Regex> = Vec::new();
    for step in steps {
        if step.descendant {
            pending.push(Regex::AnyAtom.star());
        }
        pending.push(match &step.test {
            Some(name) => Regex::Atom(alphabet.intern(name)),
            None => Regex::AnyAtom,
        });
        if !step.predicates.is_empty() || std::ptr::eq(step, steps.last().unwrap()) {
            let regex = Regex::seq(pending.drain(..));
            current = template
                .add_child(current, regex)
                .map_err(|e| e.to_string())?;
            for pred in &step.predicates {
                build_steps(alphabet, template, current, pred)?;
            }
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_xml::parse_document;

    fn eval(a: &Alphabet, xpath: &str, doc_src: &str) -> usize {
        let p = parse_corexpath(a, xpath).unwrap();
        let doc = parse_document(a, doc_src).unwrap();
        p.evaluate(&doc).len()
    }

    #[test]
    fn child_axis_paths() {
        let a = Alphabet::new();
        assert_eq!(eval(&a, "/s/c", "<s><c/><c/></s>"), 2);
        assert_eq!(eval(&a, "/s/c", "<s><d/></s>"), 0);
        assert_eq!(eval(&a, "/s/c/d", "<s><c><d/></c></s>"), 1);
    }

    #[test]
    fn descendant_axis() {
        let a = Alphabet::new();
        assert_eq!(eval(&a, "//m", "<x><y><m/></y><m/></x>"), 2);
        assert_eq!(eval(&a, "/x//m", "<x><y><m/></y></x>"), 1);
        assert_eq!(eval(&a, "//q", "<x><y/></x>"), 0);
    }

    #[test]
    fn wildcard_step() {
        let a = Alphabet::new();
        assert_eq!(eval(&a, "/s/*/m", "<s><a><m/></a><b><m/></b></s>"), 2);
    }

    #[test]
    fn attribute_and_text_tests() {
        let a = Alphabet::new();
        assert_eq!(eval(&a, "/c/@id", "<c id=\"7\"/>"), 1);
        assert_eq!(eval(&a, "/c/text()", "<c>hello</c>"), 1);
        assert_eq!(eval(&a, "/c/@id", "<c/>"), 0);
    }

    #[test]
    fn predicates_filter() {
        let a = Alphabet::new();
        // Candidates that still have exams to pass.
        let doc = "<s>\
            <cand><toBePassed/><level>B</level></cand>\
            <cand><level>A</level></cand>\
            </s>";
        assert_eq!(eval(&a, "/s/cand[toBePassed]/level", doc), 1);
        assert_eq!(eval(&a, "/s/cand/level", doc), 2);
    }

    #[test]
    fn nested_and_deep_predicates() {
        let a = Alphabet::new();
        let doc = "<s><c><e><m/></e><z/></c><c><e/><z/></c></s>";
        assert_eq!(eval(&a, "/s/c[e/m]/z", doc), 1);
        assert_eq!(eval(&a, "/s/c[e]/z", doc), 2);
        assert_eq!(eval(&a, "/s/c[.//m]/z", doc), 1);
    }

    #[test]
    fn conjunctive_predicates() {
        let a = Alphabet::new();
        let doc = "<s><c><x/><y/></c><c><x/></c><c><y/></c></s>";
        assert_eq!(eval(&a, "/s/c[x and y]", doc), 1);
        assert_eq!(eval(&a, "/s/c[x]", doc), 2);
    }

    #[test]
    fn parse_errors() {
        let a = Alphabet::new();
        assert!(parse_corexpath(&a, "relative/path").is_err());
        assert!(parse_corexpath(&a, "/a[b").is_err());
        assert!(parse_corexpath(&a, "/a]").is_err());
        assert!(parse_corexpath(&a, "/").is_err());
        assert!(parse_corexpath(&a, "/a/").is_err());
    }

    #[test]
    fn documented_order_caveat() {
        // The translation imposes document order between a predicate branch
        // and the continuation — faithful to RTP semantics (Definition 2),
        // stricter than XPath.
        let a = Alphabet::new();
        let p = parse_corexpath(&a, "/s/c[x]/y").unwrap();
        let before = parse_document(&a, "<s><c><x/><y/></c></s>").unwrap();
        let after = parse_document(&a, "<s><c><y/><x/></c></s>").unwrap();
        assert_eq!(p.evaluate(&before).len(), 1);
        assert_eq!(p.evaluate(&after).len(), 0);
    }

    #[test]
    fn merges_predicate_free_steps_into_one_edge() {
        let a = Alphabet::new();
        let p = parse_corexpath(&a, "/a/b/c/d").unwrap();
        // Root + a single merged template node.
        assert_eq!(p.template().len(), 2);
        let p2 = parse_corexpath(&a, "/a/b[x]/c/d").unwrap();
        // Root + node for b + branch for x + node for c/d.
        assert_eq!(p2.template().len(), 4);
    }
}
