//! Compiling a regular tree pattern into a bottom-up tree automaton `A_R`
//! recognizing the documents that contain at least one trace of `R`
//! (first step of the paper's Proposition 3 construction).
//!
//! States (all `O(|R|)` of them):
//!
//! * `BOT` — the node carries no part of the guessed trace;
//! * `TOP` — the node lies strictly inside the subtree rooted at the image
//!   of a *marked* (selected) template node. Marking is optional; the
//!   independence criterion uses it to recognize the region
//!   `N(FD_s̄(D))` of Definition 6 structurally;
//! * `INT(w, s)` — the node is an interior node of the path witnessing the
//!   edge into template node `w`; reading the node's label from word-state
//!   `s` of `A_e` and continuing downward reaches acceptance at a node
//!   realizing `w`;
//! * `END(w, s)` — the node *is* the image of `w` (its label, consumed from
//!   `s`, accepts) and its children realize `w`'s outgoing edges through
//!   pairwise distinct children in template-sibling order;
//! * `ACC` — the document root realizes the template root (final).
//!
//! A spurious `TOP` outside a marked subtree can never reach acceptance:
//! `TOP` appears as a horizontal letter only in marked-region transitions.

use regtree_alphabet::{Alphabet, Symbol};
use regtree_automata::{Nfa, NfaLabel, StateId};
use regtree_hedge::{HedgeAutomaton, HedgeTransition, LabelGuard, TreeState};

use crate::pattern::RegularTreePattern;
use crate::template::{Template, TemplateNodeId};

/// Role of a compiled automaton state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateRole {
    /// Off-trace, outside any marked subtree.
    Bot,
    /// Strictly inside the subtree rooted at a marked node's image.
    Top,
    /// Interior node of the path into the given template node.
    Interior(TemplateNodeId),
    /// Image of the given template node.
    Endpoint(TemplateNodeId),
    /// Root acceptance state.
    Accept,
}

/// A compiled pattern automaton with state metadata.
#[derive(Clone, Debug)]
pub struct PatternAutomaton {
    /// The underlying hedge automaton.
    pub automaton: HedgeAutomaton,
    /// The off-trace state.
    pub bot: TreeState,
    /// The inside-marked-subtree state.
    pub top: TreeState,
    /// The accepting root state.
    pub acc: TreeState,
    roles: Vec<StateRole>,
}

impl PatternAutomaton {
    /// Role of a state.
    pub fn role(&self, q: TreeState) -> StateRole {
        self.roles[q as usize]
    }

    /// Is the state part of the trace or of a marked subtree
    /// (i.e. anything except `BOT`)?
    pub fn in_region(&self, q: TreeState) -> bool {
        !matches!(self.roles[q as usize], StateRole::Bot)
    }

    /// The template node this state is the image of, if it is an endpoint.
    pub fn endpoint_of(&self, q: TreeState) -> Option<TemplateNodeId> {
        match self.roles[q as usize] {
            StateRole::Endpoint(w) => Some(w),
            _ => None,
        }
    }

    /// Does `doc` contain a trace of the compiled pattern?
    pub fn accepts(&self, doc: &regtree_xml::Document) -> bool {
        self.automaton.accepts(doc)
    }
}

/// Compiles `pattern` to an automaton recognizing documents containing a
/// trace. When `mark_selected` is set, subtrees rooted at selected-node
/// images are tracked with the `TOP` state (used by the IC construction).
pub fn compile_pattern(pattern: &RegularTreePattern, mark_selected: bool) -> PatternAutomaton {
    let template = pattern.template();
    let marked: Vec<TemplateNodeId> = if mark_selected {
        pattern.selected().to_vec()
    } else {
        Vec::new()
    };
    compile_template(template, &marked)
}

/// Compiles a bare template (no marking): accepts documents with a trace.
pub fn compile_template_plain(template: &Template) -> PatternAutomaton {
    compile_template(template, &[])
}

fn region_marked(template: &Template, marked: &[TemplateNodeId], w: TemplateNodeId) -> bool {
    marked.iter().any(|&m| template.is_ancestor_or_self(m, w))
}

fn compile_template(template: &Template, marked: &[TemplateNodeId]) -> PatternAutomaton {
    const BOT: TreeState = 0;
    const TOP: TreeState = 1;
    // Allocate 2 states per (edge, word-state): INT then END.
    let edges = template.edges();
    let mut base: Vec<u32> = vec![0; template.len()];
    let mut next: u32 = 2;
    for &w in &edges {
        base[w.index()] = next;
        next += 2 * template.edge_nfa(w).expect("edge").num_states() as u32;
    }
    let acc = next;
    let num_states = (acc + 1) as usize;

    let int_state = |w: TemplateNodeId, s: u32| base[w.index()] + 2 * s;
    let end_state = |w: TemplateNodeId, s: u32| base[w.index()] + 2 * s + 1;

    // Role table.
    let mut roles = vec![StateRole::Bot; num_states];
    roles[TOP as usize] = StateRole::Top;
    for &w in &edges {
        let n = template.edge_nfa(w).expect("edge").num_states() as u32;
        for s in 0..n {
            roles[int_state(w, s) as usize] = StateRole::Interior(w);
            roles[end_state(w, s) as usize] = StateRole::Endpoint(w);
        }
    }
    roles[acc as usize] = StateRole::Accept;

    let mut transitions: Vec<HedgeTransition> = Vec::new();

    // BOT: any label, all children BOT.
    transitions.push(HedgeTransition {
        guard: LabelGuard::Any,
        horizontal: star_of(BOT),
        target: BOT,
    });
    // TOP: only when marking is in play.
    if !marked.is_empty() {
        transitions.push(HedgeTransition {
            guard: LabelGuard::Any,
            horizontal: star_of(TOP),
            target: TOP,
        });
    }

    // `realize(w)` horizontal: filler* C1 filler* C2 … Ck filler*, where Ci
    // accepts INT/END of child edge wi at its NFA start state.
    let realize = |w: TemplateNodeId| -> Nfa {
        let filler = if region_marked(template, marked, w) {
            TOP
        } else {
            BOT
        };
        let required: Vec<[TreeState; 2]> = template
            .children(w)
            .iter()
            .map(|&wi| {
                let start = template.edge_nfa(wi).expect("edge").start();
                [int_state(wi, start), end_state(wi, start)]
            })
            .collect();
        let alts: Vec<&[TreeState]> = required.iter().map(|p| p.as_slice()).collect();
        interleaved_alt(filler, &alts)
    };

    // Scratch buffers shared across every (edge, state, letter) subset step;
    // the sets involved are tiny, so fresh allocations would dominate.
    let mut seen: Vec<bool> = Vec::new();
    let mut closed: Vec<u32> = Vec::new();
    let mut next_states: Vec<u32> = Vec::new();
    let mut used: Vec<Symbol> = Vec::new();
    let mut continuations: Vec<TreeState> = Vec::new();

    for &w in &edges {
        let nfa = template.edge_nfa(w).expect("edge");
        let parent = template.parent(w).expect("non-root");
        let path_filler = if region_marked(template, marked, parent) {
            TOP
        } else {
            BOT
        };
        used.clear();
        for s in 0..nfa.num_states() as u32 {
            for &(l, _) in nfa.transitions_from(s) {
                if let NfaLabel::Sym(x) = l {
                    used.push(Symbol(x));
                }
            }
        }
        used.sort_unstable_by_key(|sym| sym.0);
        used.dedup();
        let wild = nfa.uses_wildcard();
        for s in 0..nfa.num_states() as u32 {
            closed.clear();
            closed.push(s);
            eps_close_into(nfa, &mut seen, &mut closed);
            // Concrete letters the NFA mentions, plus the "all other labels"
            // case when wildcard transitions exist.
            for ci in 0..=used.len() {
                let guard = if ci < used.len() {
                    step_into(nfa, &closed, Some(used[ci].0), &mut seen, &mut next_states);
                    LabelGuard::Is(used[ci])
                } else {
                    if !wild {
                        break;
                    }
                    step_into(nfa, &closed, None, &mut seen, &mut next_states);
                    LabelGuard::AnyExcept(used.clone())
                };
                if next_states.is_empty() {
                    continue;
                }
                // Interior: one child continues the path in some s'.
                continuations.clear();
                continuations.extend(
                    next_states
                        .iter()
                        .flat_map(|&s2| [int_state(w, s2), end_state(w, s2)]),
                );
                transitions.push(HedgeTransition {
                    guard: guard.clone(),
                    horizontal: interleaved_alt(path_filler, &[&continuations]),
                    target: int_state(w, s),
                });
                // Endpoint: the label consumption accepts and the node
                // realizes w.
                if nfa.set_accepts(&next_states) {
                    transitions.push(HedgeTransition {
                        guard,
                        horizontal: realize(w),
                        target: end_state(w, s),
                    });
                }
            }
        }
    }

    // Root acceptance.
    transitions.push(HedgeTransition {
        guard: LabelGuard::Is(Alphabet::ROOT),
        horizontal: realize(template.root()),
        target: acc,
    });

    PatternAutomaton {
        automaton: HedgeAutomaton::new(num_states, transitions, vec![acc]),
        bot: BOT,
        top: TOP,
        acc,
        roles,
    }
}

/// ε-closes `set` in place (result sorted and deduplicated), reusing `seen`
/// as a visited bitmap so the subset construction allocates nothing per step.
fn eps_close_into(nfa: &Nfa, seen: &mut Vec<bool>, set: &mut Vec<u32>) {
    seen.clear();
    seen.resize(nfa.num_states(), false);
    set.retain(|&s| !std::mem::replace(&mut seen[s as usize], true));
    let mut i = 0;
    while i < set.len() {
        let s = set[i];
        i += 1;
        for &(l, t) in nfa.transitions_from(s) {
            if matches!(l, NfaLabel::Eps) && !seen[t as usize] {
                seen[t as usize] = true;
                set.push(t);
            }
        }
    }
    set.sort_unstable();
}

/// One consuming step from the closed set into `out`: `Some(a)` fires `a` and
/// wildcard transitions, `None` fires wildcard transitions only ("all other
/// labels"). The result is ε-closed, sorted, and deduplicated.
fn step_into(
    nfa: &Nfa,
    closed: &[u32],
    letter: Option<u32>,
    seen: &mut Vec<bool>,
    out: &mut Vec<u32>,
) {
    out.clear();
    for &s in closed {
        for &(l, t) in nfa.transitions_from(s) {
            let fires = match l {
                NfaLabel::Eps => false,
                NfaLabel::Sym(x) => letter == Some(x),
                NfaLabel::Any => true,
            };
            if fires {
                out.push(t);
            }
        }
    }
    eps_close_into(nfa, seen, out);
}

fn star_of(q: TreeState) -> Nfa {
    Nfa::from_parts(vec![vec![(NfaLabel::Sym(q), 0)]], 0, vec![true])
}

/// `filler* A1 filler* A2 … Ak filler*` where each `Ai` is an alternative
/// set of letters for the i-th required child. Built directly with
/// exact-capacity rows: state `i` self-loops on the filler and steps to
/// `i + 1` on any letter of `Ai`; the last state accepts.
fn interleaved_alt(filler: TreeState, required: &[&[TreeState]]) -> Nfa {
    let n = required.len() + 1;
    let mut trans: Vec<Vec<(NfaLabel, StateId)>> = Vec::with_capacity(n);
    for (i, &alts) in required.iter().enumerate() {
        let mut row = Vec::with_capacity(1 + alts.len());
        row.push((NfaLabel::Sym(filler), i as StateId));
        row.extend(alts.iter().map(|&q| (NfaLabel::Sym(q), (i + 1) as StateId)));
        trans.push(row);
    }
    trans.push(vec![(NfaLabel::Sym(filler), (n - 1) as StateId)]);
    let mut accept = vec![false; n];
    accept[n - 1] = true;
    Nfa::from_parts(trans, 0, accept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::enumerate_mappings;
    use regtree_xml::parse_document;

    fn pat(a: &Alphabet, edges: &[(&str, usize)]) -> RegularTreePattern {
        // edges: (regex, parent index into created nodes; 0 = root)
        let mut t = Template::new(a.clone());
        let mut nodes = vec![t.root()];
        for (src, parent) in edges {
            let n = t.add_child_str(nodes[*parent], src).unwrap();
            nodes.push(n);
        }
        let last = *nodes.last().unwrap();
        RegularTreePattern::monadic(t, last).unwrap()
    }

    fn agree(a: &Alphabet, p: &RegularTreePattern, doc_src: &str) {
        let doc = parse_document(a, doc_src).unwrap();
        let by_eval = !enumerate_mappings(p.template(), &doc).is_empty();
        let by_auto = compile_pattern(p, false).accepts(&doc);
        assert_eq!(by_auto, by_eval, "disagreement on {doc_src}");
    }

    #[test]
    fn automaton_agrees_with_matcher_simple() {
        let a = Alphabet::new();
        let p = pat(&a, &[("session", 0), ("candidate/exam", 1)]);
        agree(&a, &p, "<session><candidate><exam/></candidate></session>");
        agree(&a, &p, "<session><candidate/></session>");
        agree(&a, &p, "<other/>");
        agree(&a, &p, "<session><exam/></session>");
    }

    #[test]
    fn automaton_agrees_on_sibling_disjointness() {
        let a = Alphabet::new();
        // Two exams of the same candidate.
        let mut t = Template::new(a.clone());
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let e1 = t.add_child_str(cand, "exam").unwrap();
        let _e2 = t.add_child_str(cand, "exam").unwrap();
        let p = RegularTreePattern::monadic(t, e1).unwrap();
        agree(
            &a,
            &p,
            "<session><candidate><exam/><exam/></candidate></session>",
        );
        agree(&a, &p, "<session><candidate><exam/></candidate></session>");
        agree(
            &a,
            &p,
            "<session><candidate><exam/></candidate><candidate><exam/></candidate></session>",
        );
    }

    #[test]
    fn automaton_handles_star_edges() {
        let a = Alphabet::new();
        let p = pat(&a, &[("(a|b)+/leaf", 0)]);
        agree(&a, &p, "<a><leaf/></a>");
        agree(&a, &p, "<a><b><leaf/></b></a>");
        agree(&a, &p, "<leaf/>");
        agree(&a, &p, "<c><leaf/></c>");
    }

    #[test]
    fn automaton_handles_wildcards() {
        let a = Alphabet::new();
        let p = pat(&a, &[("_*/m", 0)]);
        agree(&a, &p, "<x><y><m/></y></x>");
        agree(&a, &p, "<m/>");
        agree(&a, &p, "<x><y/></x>");
    }

    #[test]
    fn marked_compilation_still_accepts_same_language() {
        let a = Alphabet::new();
        let mut t = Template::new(a.clone());
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let exam = t.add_child_str(cand, "exam").unwrap();
        let _lvl = t.add_child_str(cand, "level").unwrap();
        let p = RegularTreePattern::monadic(t, exam).unwrap();
        let plain = compile_pattern(&p, false);
        let marked = compile_pattern(&p, true);
        for src in [
            "<session><candidate><exam/><level/></candidate></session>",
            "<session><candidate><exam><deep><er/></deep></exam><level/></candidate></session>",
            "<session><candidate><level/><exam/></candidate></session>",
            "<session><candidate><exam/></candidate></session>",
        ] {
            let doc = parse_document(&a, src).unwrap();
            assert_eq!(plain.accepts(&doc), marked.accepts(&doc), "{src}");
        }
    }

    #[test]
    fn roles_are_classified() {
        let a = Alphabet::new();
        let p = pat(&a, &[("x", 0)]);
        let pa = compile_pattern(&p, true);
        assert_eq!(pa.role(pa.bot), StateRole::Bot);
        assert_eq!(pa.role(pa.top), StateRole::Top);
        assert_eq!(pa.role(pa.acc), StateRole::Accept);
        assert!(!pa.in_region(pa.bot));
        assert!(pa.in_region(pa.top));
        assert!(pa.in_region(pa.acc));
        let selected = p.selected()[0];
        let endpoints: Vec<_> = (0..pa.automaton.num_states() as TreeState)
            .filter(|&q| pa.endpoint_of(q) == Some(selected))
            .collect();
        assert!(!endpoints.is_empty());
    }

    #[test]
    fn state_count_is_linear_in_pattern_size() {
        let a = Alphabet::new();
        let p = pat(&a, &[("a/b/c/d/e", 0)]);
        let pa = compile_pattern(&p, false);
        // 2 special + 2 per NFA state + 1 accept.
        let nfa_states = p.template().edge_nfa(p.selected()[0]).unwrap().num_states();
        assert_eq!(pa.automaton.num_states(), 2 + 2 * nfa_states + 1);
    }
}
