//! Compiling a regular tree pattern into a bottom-up tree automaton `A_R`
//! recognizing the documents that contain at least one trace of `R`
//! (first step of the paper's Proposition 3 construction).
//!
//! States (all `O(|R|)` of them):
//!
//! * `BOT` — the node carries no part of the guessed trace;
//! * `TOP` — the node lies strictly inside the subtree rooted at the image
//!   of a *marked* (selected) template node. Marking is optional; the
//!   independence criterion uses it to recognize the region
//!   `N(FD_s̄(D))` of Definition 6 structurally;
//! * `INT(w, s)` — the node is an interior node of the path witnessing the
//!   edge into template node `w`; reading the node's label from word-state
//!   `s` of `A_e` and continuing downward reaches acceptance at a node
//!   realizing `w`;
//! * `END(w, s)` — the node *is* the image of `w` (its label, consumed from
//!   `s`, accepts) and its children realize `w`'s outgoing edges through
//!   pairwise distinct children in template-sibling order;
//! * `ACC` — the document root realizes the template root (final).
//!
//! A spurious `TOP` outside a marked subtree can never reach acceptance:
//! `TOP` appears as a horizontal letter only in marked-region transitions.

use regtree_alphabet::{Alphabet, Symbol};
use regtree_automata::{Nfa, NfaBuilder, NfaLabel};
use regtree_hedge::{HedgeAutomaton, HedgeTransition, LabelGuard, TreeState};

use crate::pattern::RegularTreePattern;
use crate::template::{Template, TemplateNodeId};

/// Role of a compiled automaton state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateRole {
    /// Off-trace, outside any marked subtree.
    Bot,
    /// Strictly inside the subtree rooted at a marked node's image.
    Top,
    /// Interior node of the path into the given template node.
    Interior(TemplateNodeId),
    /// Image of the given template node.
    Endpoint(TemplateNodeId),
    /// Root acceptance state.
    Accept,
}

/// A compiled pattern automaton with state metadata.
#[derive(Clone, Debug)]
pub struct PatternAutomaton {
    /// The underlying hedge automaton.
    pub automaton: HedgeAutomaton,
    /// The off-trace state.
    pub bot: TreeState,
    /// The inside-marked-subtree state.
    pub top: TreeState,
    /// The accepting root state.
    pub acc: TreeState,
    roles: Vec<StateRole>,
}

impl PatternAutomaton {
    /// Role of a state.
    pub fn role(&self, q: TreeState) -> StateRole {
        self.roles[q as usize]
    }

    /// Is the state part of the trace or of a marked subtree
    /// (i.e. anything except `BOT`)?
    pub fn in_region(&self, q: TreeState) -> bool {
        !matches!(self.roles[q as usize], StateRole::Bot)
    }

    /// The template node this state is the image of, if it is an endpoint.
    pub fn endpoint_of(&self, q: TreeState) -> Option<TemplateNodeId> {
        match self.roles[q as usize] {
            StateRole::Endpoint(w) => Some(w),
            _ => None,
        }
    }

    /// Does `doc` contain a trace of the compiled pattern?
    pub fn accepts(&self, doc: &regtree_xml::Document) -> bool {
        self.automaton.accepts(doc)
    }
}

/// Compiles `pattern` to an automaton recognizing documents containing a
/// trace. When `mark_selected` is set, subtrees rooted at selected-node
/// images are tracked with the `TOP` state (used by the IC construction).
pub fn compile_pattern(pattern: &RegularTreePattern, mark_selected: bool) -> PatternAutomaton {
    let template = pattern.template();
    let marked: Vec<TemplateNodeId> = if mark_selected {
        pattern.selected().to_vec()
    } else {
        Vec::new()
    };
    compile_template(template, &marked)
}

/// Compiles a bare template (no marking): accepts documents with a trace.
pub fn compile_template_plain(template: &Template) -> PatternAutomaton {
    compile_template(template, &[])
}

fn region_marked(template: &Template, marked: &[TemplateNodeId], w: TemplateNodeId) -> bool {
    marked.iter().any(|&m| template.is_ancestor_or_self(m, w))
}

fn compile_template(template: &Template, marked: &[TemplateNodeId]) -> PatternAutomaton {
    const BOT: TreeState = 0;
    const TOP: TreeState = 1;
    // Allocate 2 states per (edge, word-state): INT then END.
    let edges = template.edges();
    let mut base: Vec<u32> = vec![0; template.len()];
    let mut next: u32 = 2;
    for &w in &edges {
        base[w.index()] = next;
        next += 2 * template.edge_nfa(w).expect("edge").num_states() as u32;
    }
    let acc = next;
    let num_states = (acc + 1) as usize;

    let int_state = |w: TemplateNodeId, s: u32| base[w.index()] + 2 * s;
    let end_state = |w: TemplateNodeId, s: u32| base[w.index()] + 2 * s + 1;

    // Role table.
    let mut roles = vec![StateRole::Bot; num_states];
    roles[TOP as usize] = StateRole::Top;
    for &w in &edges {
        let n = template.edge_nfa(w).expect("edge").num_states() as u32;
        for s in 0..n {
            roles[int_state(w, s) as usize] = StateRole::Interior(w);
            roles[end_state(w, s) as usize] = StateRole::Endpoint(w);
        }
    }
    roles[acc as usize] = StateRole::Accept;

    let mut transitions: Vec<HedgeTransition> = Vec::new();

    // BOT: any label, all children BOT.
    transitions.push(HedgeTransition {
        guard: LabelGuard::Any,
        horizontal: star_of(BOT),
        target: BOT,
    });
    // TOP: only when marking is in play.
    if !marked.is_empty() {
        transitions.push(HedgeTransition {
            guard: LabelGuard::Any,
            horizontal: star_of(TOP),
            target: TOP,
        });
    }

    // `realize(w)` horizontal: filler* C1 filler* C2 … Ck filler*, where Ci
    // accepts INT/END of child edge wi at its NFA start state.
    let realize = |w: TemplateNodeId| -> Nfa {
        let filler = if region_marked(template, marked, w) {
            TOP
        } else {
            BOT
        };
        let required: Vec<Vec<TreeState>> = template
            .children(w)
            .iter()
            .map(|&wi| {
                let start = template.edge_nfa(wi).expect("edge").start();
                vec![int_state(wi, start), end_state(wi, start)]
            })
            .collect();
        interleaved_alt(filler, &required)
    };

    for &w in &edges {
        let nfa = template.edge_nfa(w).expect("edge");
        let parent = template.parent(w).expect("non-root");
        let path_filler = if region_marked(template, marked, parent) {
            TOP
        } else {
            BOT
        };
        let used: Vec<Symbol> = nfa.used_letters().into_iter().map(Symbol).collect();
        for s in 0..nfa.num_states() as u32 {
            let closed = nfa.eps_closure(&[s]);
            // Concrete letters the NFA mentions, plus the "all other labels"
            // case when wildcard transitions exist.
            let mut cases: Vec<(LabelGuard, Vec<u32>)> = Vec::new();
            for &a in &used {
                let next_states = nfa.step(&closed, a.0);
                if !next_states.is_empty() {
                    cases.push((LabelGuard::Is(a), next_states));
                }
            }
            if nfa.uses_wildcard() {
                let other = step_any_only(nfa, &closed);
                if !other.is_empty() {
                    cases.push((LabelGuard::AnyExcept(used.clone()), other));
                }
            }
            for (guard, next_states) in cases {
                // Interior: one child continues the path in some s'.
                let continuations: Vec<TreeState> = next_states
                    .iter()
                    .flat_map(|&s2| [int_state(w, s2), end_state(w, s2)])
                    .collect();
                transitions.push(HedgeTransition {
                    guard: guard.clone(),
                    horizontal: interleaved_alt(path_filler, &[continuations]),
                    target: int_state(w, s),
                });
                // Endpoint: the label consumption accepts and the node
                // realizes w.
                if nfa.set_accepts(&next_states) {
                    transitions.push(HedgeTransition {
                        guard,
                        horizontal: realize(w),
                        target: end_state(w, s),
                    });
                }
            }
        }
    }

    // Root acceptance.
    transitions.push(HedgeTransition {
        guard: LabelGuard::Is(Alphabet::ROOT),
        horizontal: realize(template.root()),
        target: acc,
    });

    PatternAutomaton {
        automaton: HedgeAutomaton::new(num_states, transitions, vec![acc]),
        bot: BOT,
        top: TOP,
        acc,
        roles,
    }
}

/// Letters reachable from `closed` using only wildcard transitions.
fn step_any_only(nfa: &Nfa, closed: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for &s in closed {
        for &(l, t) in nfa.transitions_from(s) {
            if matches!(l, NfaLabel::Any) {
                out.push(t);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    nfa.eps_closure(&out)
}

fn star_of(q: TreeState) -> Nfa {
    let mut b = NfaBuilder::new();
    let s = b.add_state();
    b.add_transition(s, NfaLabel::Sym(q), s);
    b.set_start(s);
    b.set_accept(s);
    b.finish()
}

/// `filler* A1 filler* A2 … Ak filler*` where each `Ai` is an alternative
/// set of letters for the i-th required child.
fn interleaved_alt(filler: TreeState, required: &[Vec<TreeState>]) -> Nfa {
    let mut b = NfaBuilder::new();
    let start = b.add_state();
    b.add_transition(start, NfaLabel::Sym(filler), start);
    let mut cur = start;
    for alts in required {
        let nxt = b.add_state();
        for &q in alts {
            b.add_transition(cur, NfaLabel::Sym(q), nxt);
        }
        b.add_transition(nxt, NfaLabel::Sym(filler), nxt);
        cur = nxt;
    }
    b.set_start(start);
    b.set_accept(cur);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::enumerate_mappings;
    use regtree_xml::parse_document;

    fn pat(a: &Alphabet, edges: &[(&str, usize)]) -> RegularTreePattern {
        // edges: (regex, parent index into created nodes; 0 = root)
        let mut t = Template::new(a.clone());
        let mut nodes = vec![t.root()];
        for (src, parent) in edges {
            let n = t.add_child_str(nodes[*parent], src).unwrap();
            nodes.push(n);
        }
        let last = *nodes.last().unwrap();
        RegularTreePattern::monadic(t, last).unwrap()
    }

    fn agree(a: &Alphabet, p: &RegularTreePattern, doc_src: &str) {
        let doc = parse_document(a, doc_src).unwrap();
        let by_eval = !enumerate_mappings(p.template(), &doc).is_empty();
        let by_auto = compile_pattern(p, false).accepts(&doc);
        assert_eq!(by_auto, by_eval, "disagreement on {doc_src}");
    }

    #[test]
    fn automaton_agrees_with_matcher_simple() {
        let a = Alphabet::new();
        let p = pat(&a, &[("session", 0), ("candidate/exam", 1)]);
        agree(&a, &p, "<session><candidate><exam/></candidate></session>");
        agree(&a, &p, "<session><candidate/></session>");
        agree(&a, &p, "<other/>");
        agree(&a, &p, "<session><exam/></session>");
    }

    #[test]
    fn automaton_agrees_on_sibling_disjointness() {
        let a = Alphabet::new();
        // Two exams of the same candidate.
        let mut t = Template::new(a.clone());
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let e1 = t.add_child_str(cand, "exam").unwrap();
        let _e2 = t.add_child_str(cand, "exam").unwrap();
        let p = RegularTreePattern::monadic(t, e1).unwrap();
        agree(
            &a,
            &p,
            "<session><candidate><exam/><exam/></candidate></session>",
        );
        agree(&a, &p, "<session><candidate><exam/></candidate></session>");
        agree(
            &a,
            &p,
            "<session><candidate><exam/></candidate><candidate><exam/></candidate></session>",
        );
    }

    #[test]
    fn automaton_handles_star_edges() {
        let a = Alphabet::new();
        let p = pat(&a, &[("(a|b)+/leaf", 0)]);
        agree(&a, &p, "<a><leaf/></a>");
        agree(&a, &p, "<a><b><leaf/></b></a>");
        agree(&a, &p, "<leaf/>");
        agree(&a, &p, "<c><leaf/></c>");
    }

    #[test]
    fn automaton_handles_wildcards() {
        let a = Alphabet::new();
        let p = pat(&a, &[("_*/m", 0)]);
        agree(&a, &p, "<x><y><m/></y></x>");
        agree(&a, &p, "<m/>");
        agree(&a, &p, "<x><y/></x>");
    }

    #[test]
    fn marked_compilation_still_accepts_same_language() {
        let a = Alphabet::new();
        let mut t = Template::new(a.clone());
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let exam = t.add_child_str(cand, "exam").unwrap();
        let _lvl = t.add_child_str(cand, "level").unwrap();
        let p = RegularTreePattern::monadic(t, exam).unwrap();
        let plain = compile_pattern(&p, false);
        let marked = compile_pattern(&p, true);
        for src in [
            "<session><candidate><exam/><level/></candidate></session>",
            "<session><candidate><exam><deep><er/></deep></exam><level/></candidate></session>",
            "<session><candidate><level/><exam/></candidate></session>",
            "<session><candidate><exam/></candidate></session>",
        ] {
            let doc = parse_document(&a, src).unwrap();
            assert_eq!(plain.accepts(&doc), marked.accepts(&doc), "{src}");
        }
    }

    #[test]
    fn roles_are_classified() {
        let a = Alphabet::new();
        let p = pat(&a, &[("x", 0)]);
        let pa = compile_pattern(&p, true);
        assert_eq!(pa.role(pa.bot), StateRole::Bot);
        assert_eq!(pa.role(pa.top), StateRole::Top);
        assert_eq!(pa.role(pa.acc), StateRole::Accept);
        assert!(!pa.in_region(pa.bot));
        assert!(pa.in_region(pa.top));
        assert!(pa.in_region(pa.acc));
        let selected = p.selected()[0];
        let endpoints: Vec<_> = (0..pa.automaton.num_states() as TreeState)
            .filter(|&q| pa.endpoint_of(q) == Some(selected))
            .collect();
        assert!(!endpoints.is_empty());
    }

    #[test]
    fn state_count_is_linear_in_pattern_size() {
        let a = Alphabet::new();
        let p = pat(&a, &[("a/b/c/d/e", 0)]);
        let pa = compile_pattern(&p, false);
        // 2 special + 2 per NFA state + 1 accept.
        let nfa_states = p.template().edge_nfa(p.selected()[0]).unwrap().num_states();
        assert_eq!(pa.automaton.num_states(), 2 + 2 * nfa_states + 1);
    }
}
