//! Pattern evaluation: enumerating the mappings of Definition 2.
//!
//! A mapping `π` sends template nodes to document nodes such that
//!
//! 1. the template root maps to the document root;
//! 2. document order is preserved (`w ≺ w' ⇒ π(w) < π(w')`);
//! 3. every template edge `e = (w, w')` is witnessed by the unique downward
//!    path from `π(w)` to `π(w')`, whose label word (source label excluded,
//!    target label included) belongs to `L(A_e)`;
//! 4. paths of two distinct edges leaving the same template node share no
//!    prefix — they descend through *distinct* children of `π(w)`.
//!
//! Because downward paths in a tree are unique, a mapping is fully
//! determined by the node assignment. Conditions (2) and (4) together are
//! equivalent to: sibling edges descend through distinct children of the
//! source image, in template-sibling order (see DESIGN.md §2); the matcher
//! enforces exactly that and a property test cross-checks the original
//! four conditions.

use std::collections::HashMap;

use regtree_xml::{Document, NodeId};

use crate::template::{Template, TemplateNodeId};

/// A mapping of a template on a document: one image per template node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Mapping {
    images: Vec<NodeId>,
}

impl Mapping {
    /// Image of a template node.
    pub fn image(&self, w: TemplateNodeId) -> NodeId {
        self.images[w.index()]
    }

    /// All images, indexed by template node.
    pub fn images(&self) -> &[NodeId] {
        &self.images
    }

    /// The trace of the pattern w.r.t. this mapping: the smallest subtree of
    /// `doc` containing the image set — i.e. the ancestor-closure of the
    /// images (sorted in document order).
    pub fn trace_nodes(&self, doc: &Document) -> Vec<NodeId> {
        let mut seen: Vec<NodeId> = Vec::new();
        for &img in &self.images {
            let mut cur = Some(img);
            while let Some(n) = cur {
                if seen.contains(&n) {
                    break; // ancestors already recorded
                }
                seen.push(n);
                cur = doc.parent(n);
            }
        }
        seen.sort_by(|&a, &b| doc.doc_order(a, b));
        seen
    }
}

/// Enumerates every mapping of `template` on `doc`.
///
/// Worst-case exponential in the template size (the problem enumerates all
/// embeddings); memoizes edge-candidate computation per `(edge, source)`.
pub fn enumerate_mappings(template: &Template, doc: &Document) -> Vec<Mapping> {
    let order: Vec<TemplateNodeId> = template
        .preorder()
        .into_iter()
        .filter(|&n| n != template.root())
        .collect();
    let mut images: Vec<Option<NodeId>> = vec![None; template.len()];
    images[template.root().index()] = Some(doc.root());
    let mut memo: CandidateMemo = HashMap::new();
    let mut out = Vec::new();
    assign(template, doc, &order, 0, &mut images, &mut memo, &mut out);
    out
}

/// Candidate target nodes of an edge from a given source image, annotated
/// with the index of the source child the path descends through.
type CandidateMemo = HashMap<(TemplateNodeId, NodeId), Vec<(usize, NodeId)>>;

fn candidates(
    template: &Template,
    doc: &Document,
    edge_head: TemplateNodeId,
    source: NodeId,
    memo: &mut CandidateMemo,
) -> Vec<(usize, NodeId)> {
    if let Some(c) = memo.get(&(edge_head, source)) {
        return c.clone();
    }
    let nfa = template
        .edge_nfa(edge_head)
        .expect("non-root nodes have an incoming edge");
    let init = nfa.initial_set();
    let mut found: Vec<(usize, NodeId)> = Vec::new();
    for (ci, &child) in doc.children(source).iter().enumerate() {
        // DFS down the subtree of `child`, threading the NFA state set.
        let mut stack: Vec<(NodeId, Vec<u32>)> = vec![(child, init.clone())];
        while let Some((v, states)) = stack.pop() {
            let next = nfa.step(&states, doc.label(v).0);
            if next.is_empty() {
                continue;
            }
            if nfa.set_accepts(&next) {
                found.push((ci, v));
            }
            for &c in doc.children(v) {
                stack.push((c, next.clone()));
            }
        }
    }
    // Deterministic order: by child index, then document order.
    found.sort_by(|a, b| a.0.cmp(&b.0).then(doc.doc_order(a.1, b.1)));
    memo.insert((edge_head, source), found.clone());
    found
}

fn assign(
    template: &Template,
    doc: &Document,
    order: &[TemplateNodeId],
    pos: usize,
    images: &mut Vec<Option<NodeId>>,
    memo: &mut CandidateMemo,
    out: &mut Vec<Mapping>,
) {
    let Some(&w) = order.get(pos) else {
        out.push(Mapping {
            images: images.iter().map(|i| i.expect("all assigned")).collect(),
        });
        return;
    };
    let parent = template.parent(w).expect("non-root");
    let source = images[parent.index()].expect("parent assigned before child");
    // The branch child used by the closest elder sibling, if any: candidates
    // must descend through a strictly later child of the source image.
    let min_branch = template
        .children(parent)
        .iter()
        .take_while(|&&sib| sib != w)
        .filter_map(|sib| images[sib.index()])
        .map(|img| {
            doc.child_index(doc.branch_child(source, img).expect("descendant"))
                .expect("indexed child")
        })
        .max()
        .map(|b| b + 1)
        .unwrap_or(0);
    for (ci, v) in candidates(template, doc, w, source, memo) {
        if ci < min_branch {
            continue;
        }
        images[w.index()] = Some(v);
        assign(template, doc, order, pos + 1, images, memo, out);
    }
    images[w.index()] = None;
}

/// Distinct projections of all mappings onto `keep` (in the given order).
pub fn project_mappings(
    template: &Template,
    doc: &Document,
    keep: &[TemplateNodeId],
) -> Vec<Vec<NodeId>> {
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<NodeId>> = std::collections::HashSet::new();
    for m in enumerate_mappings(template, doc) {
        let proj: Vec<NodeId> = keep.iter().map(|&w| m.image(w)).collect();
        if seen.insert(proj.clone()) {
            out.push(proj);
        }
    }
    out
}

/// Evaluates a pattern: distinct images of the selected tuple.
pub fn evaluate(
    pattern: &crate::pattern::RegularTreePattern,
    doc: &Document,
) -> Vec<Vec<NodeId>> {
    project_mappings(pattern.template(), doc, pattern.selected())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RegularTreePattern;
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    /// Two candidates with two exams each (a miniature of Figure 1).
    fn mini_doc(a: &Alphabet) -> Document {
        parse_document(
            a,
            "<session>\
               <candidate IDN=\"78\"><exam><mark>15</mark></exam><exam><mark>12</mark></exam></candidate>\
               <candidate IDN=\"99\"><exam><mark>15</mark></exam><exam><mark>9</mark></exam></candidate>\
             </session>",
        )
        .unwrap()
    }

    /// R1 of Figure 2: two exams of *different* candidates.
    fn r1(a: &Alphabet) -> RegularTreePattern {
        let mut t = Template::new(a.clone());
        let session = t.add_child_str(t.root(), "session").unwrap();
        let e1 = t.add_child_str(session, "candidate/exam").unwrap();
        let e2 = t.add_child_str(session, "candidate/exam").unwrap();
        RegularTreePattern::new(t, vec![e1, e2]).unwrap()
    }

    /// R2 of Figure 2: two exams of the *same* candidate.
    fn r2(a: &Alphabet) -> RegularTreePattern {
        let mut t = Template::new(a.clone());
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let e1 = t.add_child_str(cand, "exam").unwrap();
        let e2 = t.add_child_str(cand, "exam").unwrap();
        RegularTreePattern::new(t, vec![e1, e2]).unwrap()
    }

    #[test]
    fn figure2_r1_selects_cross_candidate_pairs() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let result = r1(&a).evaluate(&doc);
        // 2 exams of candidate 1 × 2 exams of candidate 2 = 4 pairs,
        // in document order (first exam before second).
        assert_eq!(result.len(), 4);
        for pair in &result {
            let c1 = doc.parent(pair[0]).unwrap();
            let c2 = doc.parent(pair[1]).unwrap();
            assert_ne!(c1, c2, "exams must belong to different candidates");
            assert_eq!(doc.doc_order(pair[0], pair[1]), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn figure2_r2_selects_same_candidate_pairs() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let result = r2(&a).evaluate(&doc);
        // One ordered pair per candidate.
        assert_eq!(result.len(), 2);
        for pair in &result {
            let c1 = doc.parent(pair[0]).unwrap();
            let c2 = doc.parent(pair[1]).unwrap();
            assert_eq!(c1, c2, "exams must belong to the same candidate");
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn order_sensitivity_like_figure3() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<r><x/><y/></r>").unwrap();
        // x-before-y matches…
        let mut t = Template::new(a.clone());
        let r = t.add_child_str(t.root(), "r").unwrap();
        let _x = t.add_child_str(r, "x").unwrap();
        let y = t.add_child_str(r, "y").unwrap();
        let p = RegularTreePattern::monadic(t, y).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 1);
        // …y-before-x does not.
        let mut t2 = Template::new(a.clone());
        let r2 = t2.add_child_str(t2.root(), "r").unwrap();
        let _y2 = t2.add_child_str(r2, "y").unwrap();
        let x2 = t2.add_child_str(r2, "x").unwrap();
        let p2 = RegularTreePattern::monadic(t2, x2).unwrap();
        assert!(p2.evaluate(&doc).is_empty());
    }

    #[test]
    fn sibling_edges_need_distinct_children() {
        let a = Alphabet::new();
        // Only one exam: a same-candidate two-exam pattern cannot map.
        let doc = parse_document(
            &a,
            "<session><candidate><exam><mark>1</mark></exam></candidate></session>",
        )
        .unwrap();
        assert!(r2(&a).evaluate(&doc).is_empty());
        // But a one-exam pattern maps once.
        let mut t = Template::new(a.clone());
        let e = t
            .add_child_str(t.root(), "session/candidate/exam")
            .unwrap();
        let p = RegularTreePattern::monadic(t, e).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 1);
    }

    #[test]
    fn deep_edges_with_stars() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<a><b><a><b><leaf/></b></a></b></a>").unwrap();
        let mut t = Template::new(a.clone());
        let leaf = t.add_child_str(t.root(), "(a/b)+/leaf").unwrap();
        let p = RegularTreePattern::monadic(t, leaf).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 1);
        // The same pattern with (a/b)* / leaf fails properness? No: it is
        // proper (needs the final 'leaf'), and also matches.
        let mut t2 = Template::new(a.clone());
        let leaf2 = t2.add_child_str(t2.root(), "(a/b)*/leaf").unwrap();
        let p2 = RegularTreePattern::monadic(t2, leaf2).unwrap();
        assert_eq!(p2.evaluate(&doc).len(), 1);
    }

    #[test]
    fn wildcard_edges() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<x><m/></x><y><m/></y>").unwrap();
        let mut t = Template::new(a.clone());
        let m = t.add_child_str(t.root(), "_/m").unwrap();
        let p = RegularTreePattern::monadic(t, m).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 2);
    }

    #[test]
    fn mapping_images_and_trace() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let maps = r2(&a).mappings(&doc);
        assert_eq!(maps.len(), 2);
        for m in &maps {
            let trace = m.trace_nodes(&doc);
            // Trace contains the root and all images.
            assert!(trace.contains(&doc.root()));
            for &img in m.images() {
                assert!(trace.contains(&img));
            }
            // Trace is ancestor-closed.
            for &n in &trace {
                if let Some(p) = doc.parent(n) {
                    assert!(trace.contains(&p));
                }
            }
        }
    }

    #[test]
    fn projections_deduplicate() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let p = r1(&a);
        // Project onto the session node only: all 4 mappings collapse to 1.
        let t = p.template();
        let session = t.children(t.root())[0];
        let proj = project_mappings(t, &doc, &[session]);
        assert_eq!(proj.len(), 1);
    }

    #[test]
    fn empty_when_no_match() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<other/>").unwrap();
        assert!(r1(&a).evaluate(&doc).is_empty());
        assert!(r2(&a).mappings(&doc).is_empty());
    }

    #[test]
    fn trivial_pattern_selects_the_root() {
        // A template with only its root maps onto every document, selecting
        // the document root.
        let a = Alphabet::new();
        let t = Template::new(a.clone());
        let p = RegularTreePattern::monadic(t, TemplateNodeId(0)).unwrap();
        for src in ["<x/>", "<a><b/></a>"] {
            let doc = parse_document(&a, src).unwrap();
            let res = p.evaluate(&doc);
            assert_eq!(res, vec![vec![doc.root()]], "{src}");
        }
    }

    #[test]
    fn attribute_and_text_endpoints() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<c id=\"7\">hello</c>").unwrap();
        let mut t = Template::new(a.clone());
        let attr = t.add_child_str(t.root(), "c/@id").unwrap();
        let p = RegularTreePattern::monadic(t, attr).unwrap();
        let res = p.evaluate(&doc);
        assert_eq!(res.len(), 1);
        assert_eq!(doc.value(res[0][0]), Some("7"));

        let mut t2 = Template::new(a.clone());
        let text = t2.add_child_str(t2.root(), "c/#text").unwrap();
        let p2 = RegularTreePattern::monadic(t2, text).unwrap();
        let res2 = p2.evaluate(&doc);
        assert_eq!(res2.len(), 1);
        assert_eq!(doc.value(res2[0][0]), Some("hello"));
    }

    #[test]
    fn nested_matches_within_one_subtree() {
        // Both an ancestor and its descendant can be selected by separate
        // mappings of the same monadic pattern.
        let a = Alphabet::new();
        let doc = parse_document(&a, "<m><m/></m>").unwrap();
        let mut t = Template::new(a.clone());
        let m = t.add_child_str(t.root(), "_*/m").unwrap();
        let p = RegularTreePattern::monadic(t, m).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 2);
    }

    #[test]
    fn order_preservation_across_subtrees() {
        // Pattern: root -> a (with child c), root -> b. The image of c is in
        // a's subtree, before b's image.
        let a = Alphabet::new();
        let doc = parse_document(&a, "<a><c/></a><b/>").unwrap();
        let mut t = Template::new(a.clone());
        let na = t.add_child_str(t.root(), "a").unwrap();
        let nc = t.add_child_str(na, "c").unwrap();
        let nb = t.add_child_str(t.root(), "b").unwrap();
        let p = RegularTreePattern::new(t, vec![nc, nb]).unwrap();
        let res = p.evaluate(&doc);
        assert_eq!(res.len(), 1);
        // Swapped document: b before a — template sibling order violated.
        let doc2 = parse_document(&a, "<b/><a><c/></a>").unwrap();
        assert!(p.evaluate(&doc2).is_empty());
    }
}
