//! Pattern evaluation: enumerating the mappings of Definition 2.
//!
//! A mapping `π` sends template nodes to document nodes such that
//!
//! 1. the template root maps to the document root;
//! 2. document order is preserved (`w ≺ w' ⇒ π(w) < π(w')`);
//! 3. every template edge `e = (w, w')` is witnessed by the unique downward
//!    path from `π(w)` to `π(w')`, whose label word (source label excluded,
//!    target label included) belongs to `L(A_e)`;
//! 4. paths of two distinct edges leaving the same template node share no
//!    prefix — they descend through *distinct* children of `π(w)`.
//!
//! Because downward paths in a tree are unique, a mapping is fully
//! determined by the node assignment. Conditions (2) and (4) together are
//! equivalent to: sibling edges descend through distinct children of the
//! source image, in template-sibling order (see DESIGN.md §2); the matcher
//! enforces exactly that and a property test cross-checks the original
//! four conditions.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use regtree_alphabet::Symbol;
use regtree_automata::EDGE_DEAD;
use regtree_runtime::{Budget, Resource};
use regtree_xml::{label_mask, Document, LabelIndex, NodeId};

use crate::template::{Template, TemplateNodeId};

/// Optional resource governor threaded through the matcher. `None` keeps
/// the ungoverned hot path branch-predictable (the `Option` check is a
/// single well-predicted branch per candidate batch, not per DFA step).
struct Gov<'a> {
    budget: Option<&'a mut Budget>,
}

impl Gov<'_> {
    #[inline]
    fn dfa_steps(&mut self, n: u64) -> Result<(), Resource> {
        match &mut self.budget {
            Some(b) => b.on_dfa_steps(n),
            None => Ok(()),
        }
    }

    #[inline]
    fn memo_entry(&mut self) -> Result<(), Resource> {
        match &mut self.budget {
            Some(b) => b.on_memo_entry(),
            None => Ok(()),
        }
    }

    #[inline]
    fn memo_hit(&mut self) {
        if let Some(b) = &mut self.budget {
            b.on_memo_hit();
        }
    }

    #[inline]
    fn checkpoint(&mut self) -> Result<(), Resource> {
        match &mut self.budget {
            Some(b) => b.checkpoint(),
            None => Ok(()),
        }
    }
}

/// A mapping of a template on a document: one image per template node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Mapping {
    images: Vec<NodeId>,
}

impl Mapping {
    /// Image of a template node.
    pub fn image(&self, w: TemplateNodeId) -> NodeId {
        self.images[w.index()]
    }

    /// All images, indexed by template node.
    pub fn images(&self) -> &[NodeId] {
        &self.images
    }

    /// The trace of the pattern w.r.t. this mapping: the smallest subtree of
    /// `doc` containing the image set — i.e. the ancestor-closure of the
    /// images (sorted in document order).
    pub fn trace_nodes(&self, doc: &Document) -> Vec<NodeId> {
        // Membership via hash set; the Vec keeps the nodes for sorting.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        for &img in &self.images {
            let mut cur = Some(img);
            while let Some(n) = cur {
                if !seen.insert(n) {
                    break; // ancestors already recorded
                }
                nodes.push(n);
                cur = doc.parent(n);
            }
        }
        nodes.sort_by(|&a, &b| doc.doc_order(a, b));
        nodes
    }
}

/// Enumerates every mapping of `template` on `doc`.
///
/// Worst-case exponential in the template size (the problem enumerates all
/// embeddings); memoizes edge-candidate computation per `(edge, source)`.
///
/// This is the production engine: each edge automaton is stepped as its
/// cached [`EdgeDfa`](regtree_automata::EdgeDfa) (a single `u32` state per
/// document node instead of an NFA state set), and a freshly built
/// [`LabelIndex`] prunes document subtrees that cannot end a match. To
/// amortize the index over several patterns on the same document, build it
/// once and call [`enumerate_mappings_indexed`].
pub fn enumerate_mappings(template: &Template, doc: &Document) -> Vec<Mapping> {
    let index = LabelIndex::build(doc);
    enumerate_mappings_indexed(template, doc, &index)
}

/// [`enumerate_mappings`] against a prebuilt label index for `doc`.
pub fn enumerate_mappings_indexed(
    template: &Template,
    doc: &Document,
    index: &LabelIndex,
) -> Vec<Mapping> {
    let mut gov = Gov { budget: None };
    enumerate_impl(template, doc, index, &mut gov).expect("ungoverned search cannot be exhausted")
}

/// [`enumerate_mappings_indexed`] under a resource [`Budget`]: counts DFA
/// steps and candidate-memo entries, and aborts with the exhausted
/// [`Resource`] once a cap or the deadline is crossed.
pub fn enumerate_mappings_governed(
    template: &Template,
    doc: &Document,
    index: &LabelIndex,
    budget: &mut Budget,
) -> Result<Vec<Mapping>, Resource> {
    let mut gov = Gov {
        budget: Some(budget),
    };
    enumerate_impl(template, doc, index, &mut gov)
}

/// Per-edge pruning data: the Bloom mask of letters that can end an
/// accepted word, and whether unmentioned letters can (wildcard endings).
/// `None` signals global infeasibility — an edge whose final letters are all
/// absent from the document can never be witnessed, so there are no mappings.
fn edge_final_masks(template: &Template, index: &LabelIndex) -> Option<Vec<(u64, bool)>> {
    let mut final_masks: Vec<(u64, bool)> = vec![(0, false); template.len()];
    for e in template.edges() {
        match template.edge_dfa(e) {
            Some(dfa) => {
                if !dfa.other_final()
                    && dfa
                        .final_letters()
                        .iter()
                        .all(|&l| index.count(Symbol(l)) == 0)
                {
                    return None;
                }
                let mask = dfa
                    .final_letters()
                    .iter()
                    .fold(0u64, |m, &l| m | label_mask(Symbol(l)));
                final_masks[e.index()] = (mask, dfa.other_final());
            }
            // DFA cap exceeded: no pruning info, scan everything.
            None => final_masks[e.index()] = (u64::MAX, true),
        }
    }
    Some(final_masks)
}

fn enumerate_impl(
    template: &Template,
    doc: &Document,
    index: &LabelIndex,
    gov: &mut Gov,
) -> Result<Vec<Mapping>, Resource> {
    let Some(final_masks) = edge_final_masks(template, index) else {
        return Ok(Vec::new());
    };
    let mut memo: CandidateMemo = HashMap::new();
    search(
        template,
        doc,
        &mut |w, source, memo_hit, gov| {
            candidates_dfa(template, doc, index, &final_masks, w, source, memo_hit, gov)
        },
        &mut memo,
        gov,
    )
}

/// Reference engine threading NFA state sets, exactly as evaluated before
/// determinization was introduced. Kept for differential tests and as the
/// baseline in `regtree-bench`; results must equal [`enumerate_mappings`].
pub fn enumerate_mappings_nfa(template: &Template, doc: &Document) -> Vec<Mapping> {
    let mut memo: CandidateMemo = HashMap::new();
    let mut gov = Gov { budget: None };
    search(
        template,
        doc,
        &mut |w, source, memo_hit, gov| candidates_nfa(template, doc, w, source, memo_hit, gov),
        &mut memo,
        &mut gov,
    )
    .expect("ungoverned search cannot be exhausted")
}

/// Candidate target nodes of an edge from a given source image, annotated
/// with the index of the source child the path descends through. `Rc` lets
/// memo hits hand back the cached list without cloning it.
type CandidateList = Rc<Vec<(usize, NodeId)>>;
type CandidateMemo = HashMap<(TemplateNodeId, NodeId), CandidateList>;

/// Result of one candidate-list computation under the governor.
type CandidateResult = Result<CandidateList, Resource>;

/// Backtracking search over template nodes in preorder, shared by both
/// engines; `cands` computes (or recalls) the candidate list of one edge.
fn search(
    template: &Template,
    doc: &Document,
    cands: &mut dyn FnMut(TemplateNodeId, NodeId, &mut CandidateMemo, &mut Gov) -> CandidateResult,
    memo: &mut CandidateMemo,
    gov: &mut Gov,
) -> Result<Vec<Mapping>, Resource> {
    let order: Vec<TemplateNodeId> = template
        .preorder()
        .into_iter()
        .filter(|&n| n != template.root())
        .collect();
    let mut images: Vec<Option<NodeId>> = vec![None; template.len()];
    images[template.root().index()] = Some(doc.root());
    let mut out = Vec::new();
    assign(
        template,
        doc,
        &order,
        0,
        &mut images,
        cands,
        memo,
        gov,
        &mut out,
    )?;
    Ok(out)
}

/// Does the root path of `image` (root label excluded, `image` included)
/// belong to the language of `anchor`'s incoming edge? `false` also covers
/// nodes that are not strict descendants of the document root (detached or
/// the root itself).
fn anchor_edge_accepts(
    template: &Template,
    doc: &Document,
    anchor: TemplateNodeId,
    image: NodeId,
    gov: &mut Gov,
) -> Result<bool, Resource> {
    let Some(word) = doc.labels_on_path(doc.root(), image) else {
        return Ok(false);
    };
    gov.dfa_steps(word.len() as u64)?;
    if let Some(dfa) = template.edge_dfa(anchor) {
        let mut state = dfa.start();
        for sym in &word {
            state = dfa.step(state, sym.0);
            if state == EDGE_DEAD {
                return Ok(false);
            }
        }
        Ok(dfa.is_accept(state))
    } else {
        let nfa = template
            .edge_nfa(anchor)
            .expect("non-root nodes have an incoming edge");
        let mut set = nfa.initial_set();
        for sym in &word {
            set = nfa.step(&set, sym.0);
            if set.is_empty() {
                return Ok(false);
            }
        }
        Ok(nfa.set_accepts(&set))
    }
}

/// Distinct projections of the mappings whose image of `anchor` lies in
/// `anchor_images`, computed *without* searching for the anchor: each given
/// image is verified against the anchor's incoming edge and then preset, so
/// the search explores only the template below the anchor.
///
/// `anchor` must be the **only child of the template root** (the shape of
/// context-scoped FD patterns, where the anchor is the context node): with
/// siblings, the preset image could violate the sibling-order condition
/// against images chosen later. Returns the same projections as filtering
/// [`project_mappings_governed`] output by the anchor image — this is the
/// impact-scoped recheck primitive, where `anchor_images` is the small set
/// of contexts an edit delta touched.
pub fn project_mappings_anchored_governed(
    template: &Template,
    doc: &Document,
    index: &LabelIndex,
    anchor: TemplateNodeId,
    anchor_images: &[NodeId],
    keep: &[TemplateNodeId],
    budget: &mut Budget,
) -> Result<Vec<Vec<NodeId>>, Resource> {
    assert_eq!(
        template.children(template.root()),
        std::slice::from_ref(&anchor),
        "anchored search requires the anchor to be the root's only child"
    );
    let mut gov = Gov {
        budget: Some(budget),
    };
    let Some(final_masks) = edge_final_masks(template, index) else {
        return Ok(Vec::new());
    };
    let order: Vec<TemplateNodeId> = template
        .preorder()
        .into_iter()
        .filter(|&n| n != template.root() && n != anchor)
        .collect();
    // Candidate memo shared across anchor images: candidate lists depend
    // only on (edge, source image), not on the preset anchor.
    let mut memo: CandidateMemo = HashMap::new();
    let mut cands = |w: TemplateNodeId, source: NodeId, memo: &mut CandidateMemo, gov: &mut Gov| {
        candidates_dfa(template, doc, index, &final_masks, w, source, memo, gov)
    };
    let mut out = Vec::new();
    for &img in anchor_images {
        if !anchor_edge_accepts(template, doc, anchor, img, &mut gov)? {
            continue;
        }
        let mut images: Vec<Option<NodeId>> = vec![None; template.len()];
        images[template.root().index()] = Some(doc.root());
        images[anchor.index()] = Some(img);
        assign(
            template,
            doc,
            &order,
            0,
            &mut images,
            &mut cands,
            &mut memo,
            &mut gov,
            &mut out,
        )?;
    }
    Ok(dedup_projections(out, keep))
}

/// DFA engine: steps a single state id per node; prunes dead and non-live
/// states, and whole subtrees whose label Bloom mask cannot end a match.
#[allow(clippy::too_many_arguments)]
fn candidates_dfa(
    template: &Template,
    doc: &Document,
    index: &LabelIndex,
    final_masks: &[(u64, bool)],
    edge_head: TemplateNodeId,
    source: NodeId,
    memo: &mut CandidateMemo,
    gov: &mut Gov,
) -> CandidateResult {
    if let Some(c) = memo.get(&(edge_head, source)) {
        gov.memo_hit();
        return Ok(Rc::clone(c));
    }
    let Some(dfa) = template.edge_dfa(edge_head) else {
        // Pathological determinization blow-up: fall back to NFA stepping.
        return candidates_nfa(template, doc, edge_head, source, memo, gov);
    };
    let (fmask, other_final) = final_masks[edge_head.index()];
    // A subtree can contribute a candidate only if some node in it can be
    // the *last* letter of an accepted word.
    let viable = |n: NodeId| other_final || index.subtree_may_intersect(n, fmask);
    let mut found: Vec<(usize, NodeId)> = Vec::new();
    let mut steps: u64 = 0;
    for (ci, &child) in doc.children(source).iter().enumerate() {
        if !viable(child) {
            continue;
        }
        let mut stack: Vec<(NodeId, u32)> = vec![(child, dfa.start())];
        while let Some((v, state)) = stack.pop() {
            let next = dfa.step(state, doc.label(v).0);
            steps += 1;
            if next == EDGE_DEAD || !dfa.is_live(next) {
                continue;
            }
            if dfa.is_accept(next) {
                found.push((ci, v));
            }
            // Children pushed right-to-left so the stack pops them in
            // document order: the DFS is a preorder walk and `found` comes
            // out sorted by (child index, document order) with no sort.
            for &c in doc.children(v).iter().rev() {
                if viable(c) {
                    stack.push((c, next));
                }
            }
        }
    }
    gov.dfa_steps(steps)?;
    gov.memo_entry()?;
    let found = Rc::new(found);
    memo.insert((edge_head, source), Rc::clone(&found));
    Ok(found)
}

/// NFA engine: threads `Vec<u32>` state sets down the document (baseline).
fn candidates_nfa(
    template: &Template,
    doc: &Document,
    edge_head: TemplateNodeId,
    source: NodeId,
    memo: &mut CandidateMemo,
    gov: &mut Gov,
) -> CandidateResult {
    if let Some(c) = memo.get(&(edge_head, source)) {
        gov.memo_hit();
        return Ok(Rc::clone(c));
    }
    let nfa = template
        .edge_nfa(edge_head)
        .expect("non-root nodes have an incoming edge");
    let init = nfa.initial_set();
    let mut found: Vec<(usize, NodeId)> = Vec::new();
    let mut steps: u64 = 0;
    for (ci, &child) in doc.children(source).iter().enumerate() {
        // DFS down the subtree of `child`, threading the NFA state set.
        let mut stack: Vec<(NodeId, Vec<u32>)> = vec![(child, init.clone())];
        while let Some((v, states)) = stack.pop() {
            let next = nfa.step(&states, doc.label(v).0);
            steps += 1;
            if next.is_empty() {
                continue;
            }
            if nfa.set_accepts(&next) {
                found.push((ci, v));
            }
            for &c in doc.children(v) {
                stack.push((c, next.clone()));
            }
        }
    }
    gov.dfa_steps(steps)?;
    gov.memo_entry()?;
    // Deterministic order: by child index, then document order.
    found.sort_by(|a, b| a.0.cmp(&b.0).then(doc.doc_order(a.1, b.1)));
    let found = Rc::new(found);
    memo.insert((edge_head, source), Rc::clone(&found));
    Ok(found)
}

#[allow(clippy::too_many_arguments)]
fn assign(
    template: &Template,
    doc: &Document,
    order: &[TemplateNodeId],
    pos: usize,
    images: &mut Vec<Option<NodeId>>,
    cands: &mut dyn FnMut(TemplateNodeId, NodeId, &mut CandidateMemo, &mut Gov) -> CandidateResult,
    memo: &mut CandidateMemo,
    gov: &mut Gov,
    out: &mut Vec<Mapping>,
) -> Result<(), Resource> {
    gov.checkpoint()?;
    let Some(&w) = order.get(pos) else {
        out.push(Mapping {
            images: images.iter().map(|i| i.expect("all assigned")).collect(),
        });
        return Ok(());
    };
    let parent = template.parent(w).expect("non-root");
    let source = images[parent.index()].expect("parent assigned before child");
    // The branch child used by the closest elder sibling, if any: candidates
    // must descend through a strictly later child of the source image.
    let min_branch = template
        .children(parent)
        .iter()
        .take_while(|&&sib| sib != w)
        .filter_map(|sib| images[sib.index()])
        .map(|img| {
            doc.child_index(doc.branch_child(source, img).expect("descendant"))
                .expect("indexed child")
        })
        .max()
        .map(|b| b + 1)
        .unwrap_or(0);
    let list = cands(w, source, memo, gov)?;
    for &(ci, v) in list.iter() {
        if ci < min_branch {
            continue;
        }
        images[w.index()] = Some(v);
        assign(template, doc, order, pos + 1, images, cands, memo, gov, out)?;
    }
    images[w.index()] = None;
    Ok(())
}

/// Distinct projections of all mappings onto `keep` (in the given order).
pub fn project_mappings(
    template: &Template,
    doc: &Document,
    keep: &[TemplateNodeId],
) -> Vec<Vec<NodeId>> {
    let index = LabelIndex::build(doc);
    project_mappings_indexed(template, doc, &index, keep)
}

/// [`project_mappings`] against a prebuilt label index for `doc`.
pub fn project_mappings_indexed(
    template: &Template,
    doc: &Document,
    index: &LabelIndex,
    keep: &[TemplateNodeId],
) -> Vec<Vec<NodeId>> {
    let mappings = enumerate_mappings_indexed(template, doc, index);
    dedup_projections(mappings, keep)
}

/// [`project_mappings_indexed`] under a resource [`Budget`].
pub fn project_mappings_governed(
    template: &Template,
    doc: &Document,
    index: &LabelIndex,
    keep: &[TemplateNodeId],
    budget: &mut Budget,
) -> Result<Vec<Vec<NodeId>>, Resource> {
    let mappings = enumerate_mappings_governed(template, doc, index, budget)?;
    Ok(dedup_projections(mappings, keep))
}

fn dedup_projections(mappings: Vec<Mapping>, keep: &[TemplateNodeId]) -> Vec<Vec<NodeId>> {
    // Each projection is stored once (shared between the dedup set and the
    // output order) instead of cloned into both.
    let mut out: Vec<Rc<[NodeId]>> = Vec::new();
    let mut seen: HashSet<Rc<[NodeId]>> = HashSet::new();
    for m in mappings {
        let proj: Rc<[NodeId]> = keep.iter().map(|&w| m.image(w)).collect();
        if seen.insert(Rc::clone(&proj)) {
            out.push(proj);
        }
    }
    out.into_iter().map(|p| p.to_vec()).collect()
}

/// Evaluates a pattern: distinct images of the selected tuple.
pub fn evaluate(pattern: &crate::pattern::RegularTreePattern, doc: &Document) -> Vec<Vec<NodeId>> {
    project_mappings(pattern.template(), doc, pattern.selected())
}

/// [`evaluate`] against a prebuilt label index for `doc` (amortizes the
/// index when many patterns are evaluated on one document).
pub fn evaluate_indexed(
    pattern: &crate::pattern::RegularTreePattern,
    doc: &Document,
    index: &LabelIndex,
) -> Vec<Vec<NodeId>> {
    project_mappings_indexed(pattern.template(), doc, index, pattern.selected())
}

/// [`evaluate_indexed`] under a resource [`Budget`]: aborts with the
/// exhausted [`Resource`] once a cap or deadline is crossed.
pub fn evaluate_governed(
    pattern: &crate::pattern::RegularTreePattern,
    doc: &Document,
    index: &LabelIndex,
    budget: &mut Budget,
) -> Result<Vec<Vec<NodeId>>, Resource> {
    project_mappings_governed(pattern.template(), doc, index, pattern.selected(), budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RegularTreePattern;
    use regtree_alphabet::Alphabet;
    use regtree_xml::parse_document;

    /// Two candidates with two exams each (a miniature of Figure 1).
    fn mini_doc(a: &Alphabet) -> Document {
        parse_document(
            a,
            "<session>\
               <candidate IDN=\"78\"><exam><mark>15</mark></exam><exam><mark>12</mark></exam></candidate>\
               <candidate IDN=\"99\"><exam><mark>15</mark></exam><exam><mark>9</mark></exam></candidate>\
             </session>",
        )
        .unwrap()
    }

    /// R1 of Figure 2: two exams of *different* candidates.
    fn r1(a: &Alphabet) -> RegularTreePattern {
        let mut t = Template::new(a.clone());
        let session = t.add_child_str(t.root(), "session").unwrap();
        let e1 = t.add_child_str(session, "candidate/exam").unwrap();
        let e2 = t.add_child_str(session, "candidate/exam").unwrap();
        RegularTreePattern::new(t, vec![e1, e2]).unwrap()
    }

    /// R2 of Figure 2: two exams of the *same* candidate.
    fn r2(a: &Alphabet) -> RegularTreePattern {
        let mut t = Template::new(a.clone());
        let cand = t.add_child_str(t.root(), "session/candidate").unwrap();
        let e1 = t.add_child_str(cand, "exam").unwrap();
        let e2 = t.add_child_str(cand, "exam").unwrap();
        RegularTreePattern::new(t, vec![e1, e2]).unwrap()
    }

    #[test]
    fn figure2_r1_selects_cross_candidate_pairs() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let result = r1(&a).evaluate(&doc);
        // 2 exams of candidate 1 × 2 exams of candidate 2 = 4 pairs,
        // in document order (first exam before second).
        assert_eq!(result.len(), 4);
        for pair in &result {
            let c1 = doc.parent(pair[0]).unwrap();
            let c2 = doc.parent(pair[1]).unwrap();
            assert_ne!(c1, c2, "exams must belong to different candidates");
            assert_eq!(doc.doc_order(pair[0], pair[1]), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn figure2_r2_selects_same_candidate_pairs() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let result = r2(&a).evaluate(&doc);
        // One ordered pair per candidate.
        assert_eq!(result.len(), 2);
        for pair in &result {
            let c1 = doc.parent(pair[0]).unwrap();
            let c2 = doc.parent(pair[1]).unwrap();
            assert_eq!(c1, c2, "exams must belong to the same candidate");
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn order_sensitivity_like_figure3() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<r><x/><y/></r>").unwrap();
        // x-before-y matches…
        let mut t = Template::new(a.clone());
        let r = t.add_child_str(t.root(), "r").unwrap();
        let _x = t.add_child_str(r, "x").unwrap();
        let y = t.add_child_str(r, "y").unwrap();
        let p = RegularTreePattern::monadic(t, y).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 1);
        // …y-before-x does not.
        let mut t2 = Template::new(a);
        let r2 = t2.add_child_str(t2.root(), "r").unwrap();
        let _y2 = t2.add_child_str(r2, "y").unwrap();
        let x2 = t2.add_child_str(r2, "x").unwrap();
        let p2 = RegularTreePattern::monadic(t2, x2).unwrap();
        assert!(p2.evaluate(&doc).is_empty());
    }

    #[test]
    fn sibling_edges_need_distinct_children() {
        let a = Alphabet::new();
        // Only one exam: a same-candidate two-exam pattern cannot map.
        let doc = parse_document(
            &a,
            "<session><candidate><exam><mark>1</mark></exam></candidate></session>",
        )
        .unwrap();
        assert!(r2(&a).evaluate(&doc).is_empty());
        // But a one-exam pattern maps once.
        let mut t = Template::new(a);
        let e = t.add_child_str(t.root(), "session/candidate/exam").unwrap();
        let p = RegularTreePattern::monadic(t, e).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 1);
    }

    #[test]
    fn deep_edges_with_stars() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<a><b><a><b><leaf/></b></a></b></a>").unwrap();
        let mut t = Template::new(a.clone());
        let leaf = t.add_child_str(t.root(), "(a/b)+/leaf").unwrap();
        let p = RegularTreePattern::monadic(t, leaf).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 1);
        // The same pattern with (a/b)* / leaf fails properness? No: it is
        // proper (needs the final 'leaf'), and also matches.
        let mut t2 = Template::new(a);
        let leaf2 = t2.add_child_str(t2.root(), "(a/b)*/leaf").unwrap();
        let p2 = RegularTreePattern::monadic(t2, leaf2).unwrap();
        assert_eq!(p2.evaluate(&doc).len(), 1);
    }

    #[test]
    fn wildcard_edges() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<x><m/></x><y><m/></y>").unwrap();
        let mut t = Template::new(a);
        let m = t.add_child_str(t.root(), "_/m").unwrap();
        let p = RegularTreePattern::monadic(t, m).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 2);
    }

    #[test]
    fn mapping_images_and_trace() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let maps = r2(&a).mappings(&doc);
        assert_eq!(maps.len(), 2);
        for m in &maps {
            let trace = m.trace_nodes(&doc);
            // Trace contains the root and all images.
            assert!(trace.contains(&doc.root()));
            for &img in m.images() {
                assert!(trace.contains(&img));
            }
            // Trace is ancestor-closed.
            for &n in &trace {
                if let Some(p) = doc.parent(n) {
                    assert!(trace.contains(&p));
                }
            }
        }
    }

    #[test]
    fn projections_deduplicate() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let p = r1(&a);
        // Project onto the session node only: all 4 mappings collapse to 1.
        let t = p.template();
        let session = t.children(t.root())[0];
        let proj = project_mappings(t, &doc, &[session]);
        assert_eq!(proj.len(), 1);
    }

    #[test]
    fn empty_when_no_match() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<other/>").unwrap();
        assert!(r1(&a).evaluate(&doc).is_empty());
        assert!(r2(&a).mappings(&doc).is_empty());
    }

    #[test]
    fn trivial_pattern_selects_the_root() {
        // A template with only its root maps onto every document, selecting
        // the document root.
        let a = Alphabet::new();
        let t = Template::new(a.clone());
        let p = RegularTreePattern::monadic(t, TemplateNodeId(0)).unwrap();
        for src in ["<x/>", "<a><b/></a>"] {
            let doc = parse_document(&a, src).unwrap();
            let res = p.evaluate(&doc);
            assert_eq!(res, vec![vec![doc.root()]], "{src}");
        }
    }

    #[test]
    fn attribute_and_text_endpoints() {
        let a = Alphabet::new();
        let doc = parse_document(&a, "<c id=\"7\">hello</c>").unwrap();
        let mut t = Template::new(a.clone());
        let attr = t.add_child_str(t.root(), "c/@id").unwrap();
        let p = RegularTreePattern::monadic(t, attr).unwrap();
        let res = p.evaluate(&doc);
        assert_eq!(res.len(), 1);
        assert_eq!(doc.value(res[0][0]), Some("7"));

        let mut t2 = Template::new(a);
        let text = t2.add_child_str(t2.root(), "c/#text").unwrap();
        let p2 = RegularTreePattern::monadic(t2, text).unwrap();
        let res2 = p2.evaluate(&doc);
        assert_eq!(res2.len(), 1);
        assert_eq!(doc.value(res2[0][0]), Some("hello"));
    }

    #[test]
    fn nested_matches_within_one_subtree() {
        // Both an ancestor and its descendant can be selected by separate
        // mappings of the same monadic pattern.
        let a = Alphabet::new();
        let doc = parse_document(&a, "<m><m/></m>").unwrap();
        let mut t = Template::new(a);
        let m = t.add_child_str(t.root(), "_*/m").unwrap();
        let p = RegularTreePattern::monadic(t, m).unwrap();
        assert_eq!(p.evaluate(&doc).len(), 2);
    }

    #[test]
    fn anchored_projection_matches_filtered_full_search() {
        let a = Alphabet::new();
        let doc = mini_doc(&a);
        let p = r2(&a);
        let t = p.template();
        let anchor = t.children(t.root())[0]; // the candidate node
        let index = LabelIndex::build(&doc);
        let keep = p.selected();

        let full = project_mappings_indexed(t, &doc, &index, keep);
        // Anchoring at every candidate node reproduces the full result.
        let candidates = index.nodes_with_label(a.intern("candidate")).to_vec();
        let mut budget = regtree_runtime::Budget::unlimited();
        let anchored = project_mappings_anchored_governed(
            t,
            &doc,
            &index,
            anchor,
            &candidates,
            keep,
            &mut budget,
        )
        .unwrap();
        assert_eq!(anchored, full);

        // Anchoring at a single candidate yields exactly the projections
        // whose images lie under it.
        let one = project_mappings_anchored_governed(
            t,
            &doc,
            &index,
            anchor,
            &candidates[..1],
            keep,
            &mut budget,
        )
        .unwrap();
        let filtered: Vec<Vec<NodeId>> = full
            .iter()
            .filter(|proj| {
                proj.iter()
                    .all(|&n| doc.is_ancestor_or_self(candidates[0], n))
            })
            .cloned()
            .collect();
        assert_eq!(one, filtered);

        // Non-candidates (wrong root path) and detached images contribute
        // nothing.
        let exam = index.nodes_with_label(a.intern("exam"))[0];
        let none = project_mappings_anchored_governed(
            t,
            &doc,
            &index,
            anchor,
            &[exam, doc.root()],
            keep,
            &mut budget,
        )
        .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn order_preservation_across_subtrees() {
        // Pattern: root -> a (with child c), root -> b. The image of c is in
        // a's subtree, before b's image.
        let a = Alphabet::new();
        let doc = parse_document(&a, "<a><c/></a><b/>").unwrap();
        let mut t = Template::new(a.clone());
        let na = t.add_child_str(t.root(), "a").unwrap();
        let nc = t.add_child_str(na, "c").unwrap();
        let nb = t.add_child_str(t.root(), "b").unwrap();
        let p = RegularTreePattern::new(t, vec![nc, nb]).unwrap();
        let res = p.evaluate(&doc);
        assert_eq!(res.len(), 1);
        // Swapped document: b before a — template sibling order violated.
        let doc2 = parse_document(&a, "<b/><a><c/></a>").unwrap();
        assert!(p.evaluate(&doc2).is_empty());
    }
}
