//! N-ary regular tree patterns (paper Definition 1): a template plus the
//! selected tuple of template nodes.

use std::fmt;

use regtree_xml::{Document, NodeId};

use crate::template::{Template, TemplateNodeId};

/// An n-ary regular tree pattern `R = (T, s̄)`.
#[derive(Clone, Debug)]
pub struct RegularTreePattern {
    template: Template,
    selected: Vec<TemplateNodeId>,
}

/// Error raised constructing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A selected node is not part of the template.
    UnknownNode(TemplateNodeId),
    /// The selected tuple must not be empty.
    EmptySelection,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnknownNode(n) => write!(f, "selected node n{} not in template", n.0),
            PatternError::EmptySelection => write!(f, "selected tuple is empty"),
        }
    }
}

impl std::error::Error for PatternError {}

impl RegularTreePattern {
    /// Creates a pattern from a template and its selected tuple.
    pub fn new(
        template: Template,
        selected: Vec<TemplateNodeId>,
    ) -> Result<RegularTreePattern, PatternError> {
        if selected.is_empty() {
            return Err(PatternError::EmptySelection);
        }
        for &s in &selected {
            if s.index() >= template.len() {
                return Err(PatternError::UnknownNode(s));
            }
        }
        Ok(RegularTreePattern { template, selected })
    }

    /// A monadic (unary) pattern.
    pub fn monadic(
        template: Template,
        selected: TemplateNodeId,
    ) -> Result<RegularTreePattern, PatternError> {
        RegularTreePattern::new(template, vec![selected])
    }

    /// The underlying template.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The selected tuple `s̄`.
    pub fn selected(&self) -> &[TemplateNodeId] {
        &self.selected
    }

    /// Arity `n` of the pattern.
    pub fn arity(&self) -> usize {
        self.selected.len()
    }

    /// The size `|R|` (Definition 1).
    pub fn size(&self) -> usize {
        self.template.size()
    }

    /// Evaluates the pattern on `doc`: the set of distinct selected-node
    /// image tuples, each denoting the tuple of sub-trees `(D(π(w_1)), …)`.
    pub fn evaluate(&self, doc: &Document) -> Vec<Vec<NodeId>> {
        crate::eval::evaluate(self, doc)
    }

    /// All mappings of the pattern's template on `doc` (Definition 2).
    pub fn mappings(&self, doc: &Document) -> Vec<crate::eval::Mapping> {
        crate::eval::enumerate_mappings(&self.template, doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_alphabet::Alphabet;

    #[test]
    fn construction_checks() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "x").unwrap();
        assert!(RegularTreePattern::new(t.clone(), vec![]).is_err());
        assert!(RegularTreePattern::new(t.clone(), vec![TemplateNodeId(99)]).is_err());
        let p = RegularTreePattern::monadic(t, c).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.selected(), &[c]);
    }

    #[test]
    fn size_delegates_to_template() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        let c = t.add_child_str(t.root(), "x/y/z").unwrap();
        let p = RegularTreePattern::monadic(t.clone(), c).unwrap();
        assert_eq!(p.size(), t.size());
    }
}
