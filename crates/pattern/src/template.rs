//! Regular tree templates (paper Definition 1).
//!
//! A template is a finite tree whose edges carry *proper* regular expressions
//! over the label alphabet. Every non-root node has exactly one incoming
//! edge, so edges are identified with their head node.

use std::fmt;

use regtree_alphabet::Alphabet;
use regtree_automata::{EdgeDfa, Nfa, Regex};

/// Subset-construction state cap for cached edge DFAs. Edge expressions are
/// small (paper Definition 1 sizes them in the tens of states), so blow-up
/// past this bound is pathological; such edges fall back to NFA stepping.
const EDGE_DFA_MAX_STATES: usize = 4096;

/// Handle to a template node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TemplateNodeId(pub u32);

impl TemplateNodeId {
    /// Index into the template arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct TemplateNode {
    parent: Option<TemplateNodeId>,
    children: Vec<TemplateNodeId>,
    /// Incoming edge expression (`None` for the root).
    regex: Option<Regex>,
    /// Compiled word automaton `A_e` of the incoming edge.
    nfa: Option<Nfa>,
    /// Determinization of `nfa`, built once at construction so evaluation
    /// steps a single state id instead of cloning NFA state sets. `None` for
    /// the root and for edges whose subset construction exceeded the cap.
    dfa: Option<EdgeDfa>,
}

/// Error raised while building a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// Edge expressions must be proper (Definition 1): the empty word would
    /// let a child node coincide with its parent's image.
    ImproperRegex(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::ImproperRegex(r) => {
                write!(
                    f,
                    "edge expression is not proper (accepts ε or nothing): {r}"
                )
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// A regular tree template `T = (Σ, N, E, 𝓔)`.
#[derive(Clone, Debug)]
pub struct Template {
    alphabet: Alphabet,
    nodes: Vec<TemplateNode>,
}

impl Template {
    /// Creates a template containing only the root node.
    pub fn new(alphabet: Alphabet) -> Template {
        Template {
            alphabet,
            nodes: vec![TemplateNode {
                parent: None,
                children: Vec::new(),
                regex: None,
                nfa: None,
                dfa: None,
            }],
        }
    }

    /// The shared alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The root node (maps to the document root in every mapping).
    pub fn root(&self) -> TemplateNodeId {
        TemplateNodeId(0)
    }

    /// Adds a child of `parent` reached through edge expression `regex`.
    ///
    /// Children are ordered: the insertion order is the sibling order that
    /// mappings must respect.
    pub fn add_child(
        &mut self,
        parent: TemplateNodeId,
        regex: Regex,
    ) -> Result<TemplateNodeId, TemplateError> {
        if !regex.is_proper() {
            return Err(TemplateError::ImproperRegex(
                regex.display(&self.alphabet).to_string(),
            ));
        }
        let id = TemplateNodeId(self.nodes.len() as u32);
        let nfa = Nfa::from_regex(&regex);
        let dfa = EdgeDfa::from_nfa(&nfa, EDGE_DFA_MAX_STATES);
        self.nodes.push(TemplateNode {
            parent: Some(parent),
            children: Vec::new(),
            regex: Some(regex),
            nfa: Some(nfa),
            dfa,
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Parses `src` as an edge expression and adds the child.
    pub fn add_child_str(
        &mut self,
        parent: TemplateNodeId,
        src: &str,
    ) -> Result<TemplateNodeId, TemplateError> {
        let regex = regtree_automata::parse_regex(&self.alphabet, src)
            .map_err(|e| TemplateError::ImproperRegex(format!("{src}: {e}")))?;
        self.add_child(parent, regex)
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Parent of a node.
    pub fn parent(&self, n: TemplateNodeId) -> Option<TemplateNodeId> {
        self.nodes[n.index()].parent
    }

    /// Ordered children.
    pub fn children(&self, n: TemplateNodeId) -> &[TemplateNodeId] {
        &self.nodes[n.index()].children
    }

    /// Is `n` a leaf?
    pub fn is_leaf(&self, n: TemplateNodeId) -> bool {
        self.nodes[n.index()].children.is_empty()
    }

    /// Incoming edge expression (`None` for the root).
    pub fn edge_regex(&self, n: TemplateNodeId) -> Option<&Regex> {
        self.nodes[n.index()].regex.as_ref()
    }

    /// Incoming edge automaton `A_e` (`None` for the root).
    pub fn edge_nfa(&self, n: TemplateNodeId) -> Option<&Nfa> {
        self.nodes[n.index()].nfa.as_ref()
    }

    /// Cached determinization of the incoming edge automaton (`None` for the
    /// root, or when subset construction exceeded its state cap).
    pub fn edge_dfa(&self, n: TemplateNodeId) -> Option<&EdgeDfa> {
        self.nodes[n.index()].dfa.as_ref()
    }

    /// Is `a` an ancestor of `b` (strict)?
    pub fn is_ancestor(&self, a: TemplateNodeId, b: TemplateNodeId) -> bool {
        let mut cur = self.parent(b);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Is `a` an ancestor of `b` or `b` itself?
    pub fn is_ancestor_or_self(&self, a: TemplateNodeId, b: TemplateNodeId) -> bool {
        a == b || self.is_ancestor(a, b)
    }

    /// Preorder (document-order `≺`) traversal of the template nodes.
    pub fn preorder(&self) -> Vec<TemplateNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All non-root nodes (i.e. all edges, identified by their head).
    pub fn edges(&self) -> Vec<TemplateNodeId> {
        self.preorder()
            .into_iter()
            .filter(|&n| n != self.root())
            .collect()
    }

    /// The size `|R| = |Σ| + Σ_e |A_e|` of Definition 1.
    pub fn size(&self) -> usize {
        self.alphabet.len()
            + self
                .nodes
                .iter()
                .filter_map(|n| n.nfa.as_ref())
                .map(Nfa::num_states)
                .sum::<usize>()
    }

    /// Maximum number of children of any template node (the arity `a_R`
    /// appearing in the Proposition 3 bounds).
    pub fn max_arity(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Renders an ASCII sketch of the template tree (for docs and debugging).
    pub fn sketch(&self) -> String {
        let mut out = String::new();
        self.sketch_node(self.root(), 0, &mut out);
        out
    }

    fn sketch_node(&self, n: TemplateNodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if let Some(r) = self.edge_regex(n) {
            out.push_str(&format!("--[{}]--> n{}\n", r.display(&self.alphabet), n.0));
        } else {
            out.push_str("(root)\n");
        }
        for &c in self.children(n) {
            self.sketch_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> (Alphabet, Template, Vec<TemplateNodeId>) {
        let a = Alphabet::new();
        let mut t = Template::new(a.clone());
        let session = t.add_child_str(t.root(), "session").unwrap();
        let exam1 = t.add_child_str(session, "candidate/exam").unwrap();
        let exam2 = t.add_child_str(session, "candidate/exam").unwrap();
        let disc = t.add_child_str(exam1, "discipline/#text").unwrap();
        (a, t, vec![session, exam1, exam2, disc])
    }

    #[test]
    fn construction_and_structure() {
        let (_, t, ids) = template();
        assert_eq!(t.len(), 5);
        assert_eq!(t.children(t.root()), &[ids[0]]);
        assert_eq!(t.children(ids[0]), &[ids[1], ids[2]]);
        assert_eq!(t.parent(ids[3]), Some(ids[1]));
        assert!(t.is_leaf(ids[2]));
        assert!(!t.is_leaf(ids[0]));
        assert!(t.edge_regex(t.root()).is_none());
        assert!(t.edge_nfa(ids[1]).is_some());
    }

    #[test]
    fn improper_regexes_rejected() {
        let a = Alphabet::new();
        let mut t = Template::new(a);
        assert!(t.add_child_str(t.root(), "x*").is_err());
        assert!(t.add_child_str(t.root(), "x?").is_err());
        assert!(t.add_child(t.root(), Regex::Empty).is_err());
        assert!(t.add_child_str(t.root(), "x+").is_ok());
    }

    #[test]
    fn preorder_respects_insertion() {
        let (_, t, ids) = template();
        let order = t.preorder();
        assert_eq!(order, vec![t.root(), ids[0], ids[1], ids[3], ids[2]]);
        assert_eq!(t.edges().len(), 4);
    }

    #[test]
    fn ancestry() {
        let (_, t, ids) = template();
        assert!(t.is_ancestor(t.root(), ids[3]));
        assert!(t.is_ancestor(ids[0], ids[1]));
        assert!(!t.is_ancestor(ids[1], ids[2]));
        assert!(t.is_ancestor_or_self(ids[2], ids[2]));
    }

    #[test]
    fn size_metric() {
        let (a, t, _) = template();
        assert!(t.size() > a.len());
        assert_eq!(t.max_arity(), 2);
    }

    #[test]
    fn sketch_renders() {
        let (_, t, _) = template();
        let s = t.sketch();
        assert!(s.contains("(root)"));
        assert!(s.contains("candidate/exam"));
    }
}
