//! Recursive-descent parser for the textual pattern language.
//!
//! Every alternative the parser abandons contributes to the
//! expected-token set of the resulting [`ParseError`], so diagnostics name
//! everything that would have been accepted at the failure offset.

use super::ast::{Axis, EqTag, FdExpr, NameTest, Pattern, Predicate, RelPath, Step};
use super::lex::{lex, Tok};
use super::ParseError;

/// Parses an absolute pattern path into its AST.
///
/// The grammar (axes `/` and `//`, wildcards, attribute and `text()`
/// tests, conjunctive predicates, value tests, counting predicates) is
/// specified in `docs/PATTERN_LANGUAGE.md`. The AST is
/// alphabet-independent; compile it against an
/// [`Alphabet`](regtree_alphabet::Alphabet) with
/// [`Pattern::compile`](super::ast::Pattern::compile) or evaluate in one
/// shot via [`CompiledPattern::from_text`](super::CompiledPattern::from_text).
///
/// ```
/// use regtree_pattern::lang::parse_pattern;
///
/// let p = parse_pattern(r#"/session//candidate[@status = "open"]/score"#).unwrap();
/// assert_eq!(p.steps.len(), 3);
///
/// // Errors carry a byte offset and the expected-token set.
/// let err = parse_pattern("/session/[x]").unwrap_err();
/// assert_eq!(err.offset, 9);
/// assert!(err.expected.contains(&"a label name"));
/// ```
pub fn parse_pattern(src: &str) -> Result<Pattern, ParseError> {
    let mut p = Parser::new(src)?;
    let steps = p.absolute_path()?;
    p.expect_end()?;
    Ok(Pattern { steps })
}

/// Parses the one-line textual FD form `context : p1, p2[N], … -> q`.
///
/// This is the richer grammar behind the original `PathFd` syntax: the
/// same simple-path lines parse unchanged, and every path may now use
/// descendant axes, wildcards, and counting predicates. An exact `[N]` or
/// `[V]` bracket at the end of a condition/target is the \[8\] equality
/// annotation, not a predicate (use `[count(N) >= 1]` to test for a child
/// literally named `N`).
///
/// ```
/// use regtree_pattern::lang::{parse_fd_expr, EqTag};
///
/// let fd = parse_fd_expr(
///     "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank",
/// )
/// .unwrap();
/// assert_eq!(fd.conditions.len(), 2);
///
/// let fd = parse_fd_expr("/session/candidate : exam/date -> exam[N]").unwrap();
/// assert_eq!(fd.target.1, EqTag::Node);
/// ```
pub fn parse_fd_expr(src: &str) -> Result<FdExpr, ParseError> {
    let mut p = Parser::new(src)?;
    let context = Pattern {
        steps: p.absolute_path()?,
    };
    p.expect(&Tok::Colon, &["':'"])?;
    let mut conditions = Vec::new();
    if !matches!(p.peek(), Some(Tok::Arrow)) {
        loop {
            conditions.push(p.relpath_with_eq()?);
            if matches!(p.peek(), Some(Tok::Comma)) {
                p.bump();
            } else {
                break;
            }
        }
    }
    p.expect(&Tok::Arrow, &["'->'", "','"])?;
    let target = p.relpath_with_eq()?;
    p.expect_end()?;
    Ok(FdExpr {
        context,
        conditions,
        target,
    })
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    cursor: usize,
    end: usize,
}

const STEP_START: &[&str] = &["a label name", "'*'", "'@'", "'text()'"];

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            cursor: 0,
            end: src.len(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.cursor).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.cursor + 1).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.cursor)
            .map(|(p, _)| *p)
            .unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.cursor).map(|(_, t)| t.clone());
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn found(&self) -> String {
        self.peek()
            .map(Tok::describe)
            .unwrap_or_else(|| "end of input".into())
    }

    fn err(&self, expected: &[&'static str]) -> ParseError {
        ParseError::new(self.pos(), self.found(), expected)
    }

    fn expect(&mut self, tok: &Tok, expected: &[&'static str]) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.cursor == self.toks.len() {
            Ok(())
        } else {
            Err(self.err(&["end of input"]))
        }
    }

    /// `('/' | '//') step (('/' | '//') step)*`
    fn absolute_path(&mut self) -> Result<Vec<Step>, ParseError> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                Some(Tok::Slash) => Axis::Child,
                Some(Tok::DSlash) => Axis::Descendant,
                _ if steps.is_empty() => return Err(self.err(&["'/'", "'//'"])),
                _ => break,
            };
            self.bump();
            steps.push(self.step(axis)?);
        }
        Ok(steps)
    }

    /// `('.//' | 'child::' | 'descendant::')? step (('/' | '//') step)*`
    fn relpath(&mut self) -> Result<RelPath, ParseError> {
        let first_axis = match (self.peek(), self.peek2()) {
            (Some(Tok::DotDSlash), _) => {
                self.bump();
                Axis::Descendant
            }
            (Some(Tok::Name(n)), Some(Tok::ColonColon)) if n == "child" => {
                self.bump();
                self.bump();
                Axis::Child
            }
            (Some(Tok::Name(n)), Some(Tok::ColonColon)) if n == "descendant" => {
                self.bump();
                self.bump();
                Axis::Descendant
            }
            _ => Axis::Child,
        };
        let mut steps = vec![self.step(first_axis)?];
        loop {
            let axis = match self.peek() {
                Some(Tok::Slash) => Axis::Child,
                Some(Tok::DSlash) => Axis::Descendant,
                _ => break,
            };
            self.bump();
            steps.push(self.step(axis)?);
        }
        Ok(RelPath { steps })
    }

    /// An FD condition/target: a relative path whose trailing exact `[N]` /
    /// `[V]` bracket is the equality annotation.
    fn relpath_with_eq(&mut self) -> Result<(RelPath, EqTag), ParseError> {
        let mut path = self.relpath()?;
        let mut eq = EqTag::Value;
        let last = path.steps.last_mut().expect("relpath is nonempty");
        if let Some(Predicate::Exists(rp)) = last.predicates.last() {
            if let [Step {
                axis: Axis::Child,
                test: NameTest::Name(n),
                predicates,
            }] = rp.steps.as_slice()
            {
                if predicates.is_empty() && (n == "N" || n == "V") {
                    eq = if n == "N" { EqTag::Node } else { EqTag::Value };
                    last.predicates.pop();
                }
            }
        }
        Ok((path, eq))
    }

    /// `nametest ('[' predicate ('and' predicate)* ']')*`
    fn step(&mut self, axis: Axis) -> Result<Step, ParseError> {
        let test = match self.peek() {
            Some(Tok::Star) => {
                self.bump();
                NameTest::Wildcard
            }
            Some(Tok::At) => {
                self.bump();
                match self.peek() {
                    Some(Tok::Name(_)) => {
                        let Some(Tok::Name(n)) = self.bump() else {
                            unreachable!("peeked a name");
                        };
                        NameTest::Attribute(n)
                    }
                    _ => return Err(self.err(&["an attribute name"])),
                }
            }
            Some(Tok::Name(n)) if n == "text" && self.peek2() == Some(&Tok::LParen) => {
                self.bump();
                self.bump();
                self.expect(&Tok::RParen, &["')'"])?;
                NameTest::Text
            }
            Some(Tok::Name(_)) => {
                let Some(Tok::Name(n)) = self.bump() else {
                    unreachable!("peeked a name");
                };
                if n == "#text" {
                    NameTest::Text
                } else {
                    NameTest::Name(n)
                }
            }
            _ => return Err(self.err(STEP_START)),
        };
        let mut predicates = Vec::new();
        while matches!(self.peek(), Some(Tok::LBracket)) {
            self.bump();
            loop {
                predicates.push(self.predicate()?);
                if matches!(self.peek(), Some(Tok::Name(n)) if n == "and") {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Tok::RBracket, &["']'", "'and'"])?;
        }
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    /// `relpath ('=' STRING)? | 'count' '(' relpath ')' ('>=' | '>') NUMBER
    /// | 'at-least' NUMBER relpath`
    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        match (self.peek(), self.peek2()) {
            (Some(Tok::Name(n)), Some(Tok::LParen)) if n == "count" => {
                self.bump();
                self.bump();
                let path = self.relpath()?;
                self.expect(&Tok::RParen, &["')'", "'/'", "'//'"])?;
                let op_pos = self.pos();
                let at_least = match self.peek() {
                    Some(Tok::Ge) => {
                        self.bump();
                        self.number()?
                    }
                    Some(Tok::Gt) => {
                        self.bump();
                        self.number()?.saturating_add(1)
                    }
                    Some(t @ (Tok::Le | Tok::Lt | Tok::Eq | Tok::Ne)) => {
                        return Err(ParseError::note(
                            op_pos,
                            t.describe(),
                            "only 'count(p) >= n' and 'count(p) > n' are expressible: \
                             regular tree patterns are positive and existential, so counts \
                             cannot be bounded from above",
                        ));
                    }
                    _ => return Err(self.err(&["'>='", "'>'"])),
                };
                Ok(Predicate::AtLeast(at_least, path))
            }
            (Some(Tok::Name(n)), _) if n == "at-least" => {
                self.bump();
                let n = self.number()?;
                let path = self.relpath()?;
                Ok(Predicate::AtLeast(n, path))
            }
            _ => {
                let path = self.relpath()?;
                if matches!(self.peek(), Some(Tok::Eq)) {
                    self.bump();
                    match self.peek() {
                        Some(Tok::Str(_)) => {
                            let Some(Tok::Str(s)) = self.bump() else {
                                unreachable!("peeked a string");
                            };
                            Ok(Predicate::ValueEq(path, s))
                        }
                        _ => Err(self.err(&["a quoted string"])),
                    }
                } else {
                    Ok(Predicate::Exists(path))
                }
            }
        }
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        match self.peek() {
            Some(Tok::Number(n)) => {
                let n = *n;
                self.bump();
                Ok(n)
            }
            _ => Err(self.err(&["a number"])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Pattern {
        let p = parse_pattern(src).unwrap();
        let printed = p.to_text();
        let p2 = parse_pattern(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        assert_eq!(p, p2, "round trip changed the AST for {src:?}");
        p
    }

    #[test]
    fn basic_paths() {
        let p = roundtrip("/session/candidate/score");
        assert_eq!(p.steps.len(), 3);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Child));
        let p = roundtrip("//candidate");
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        roundtrip("/session//candidate/*/@status/text()");
    }

    #[test]
    fn predicates_and_sugar_normalize() {
        let p = roundtrip(r#"/s/c[@status = "open" and count(vote) >= 3]/score"#);
        assert_eq!(p.steps[1].predicates.len(), 2);
        // at-least / child:: / '>' all normalize to the canonical form.
        let a = parse_pattern("/s/c[at-least 2 child::e]").unwrap();
        let b = parse_pattern("/s/c[count(e) >= 2]").unwrap();
        let c = parse_pattern("/s/c[count(e) > 1]").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.to_text(), "/s/c[count(e) >= 2]");
        // descendant:: and .// agree.
        let d = parse_pattern("/s/c[descendant::m]").unwrap();
        let e = parse_pattern("/s/c[.//m]").unwrap();
        assert_eq!(d, e);
    }

    #[test]
    fn stacked_brackets_flatten() {
        let a = parse_pattern("/s/c[x][y]").unwrap();
        let b = parse_pattern("/s/c[x and y]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fd_exprs() {
        let fd = parse_fd_expr(
            "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank",
        )
        .unwrap();
        assert_eq!(fd.context.steps.len(), 1);
        assert_eq!(fd.conditions.len(), 2);
        assert_eq!(fd.target.1, EqTag::Value);
        let fd2 = parse_fd_expr(&fd.to_text()).unwrap();
        assert_eq!(fd, fd2);

        // [N] is the equality annotation, not a predicate.
        let fd = parse_fd_expr("/session/candidate : exam/date[N] -> exam[N]").unwrap();
        assert_eq!(fd.conditions[0].1, EqTag::Node);
        assert_eq!(fd.target.1, EqTag::Node);
        assert!(fd.target.0.steps[0].predicates.is_empty());
        assert_eq!(parse_fd_expr(&fd.to_text()).unwrap(), fd);

        // …but a counting bracket is a predicate, and a genuine test for a
        // child named N is written with count().
        let fd = parse_fd_expr("/s : a[count(N) >= 1] -> b").unwrap();
        assert_eq!(fd.conditions[0].0.steps[0].predicates.len(), 1);

        // Constant FD: empty condition list.
        let fd = parse_fd_expr("/c : -> x").unwrap();
        assert!(fd.conditions.is_empty());
        assert_eq!(parse_fd_expr(&fd.to_text()).unwrap(), fd);

        // Rich paths everywhere.
        let fd =
            parse_fd_expr("/lib//shelf : book[count(author) >= 2]/isbn -> book/title").unwrap();
        assert_eq!(fd.context.steps[1].axis, Axis::Descendant);
    }

    /// Golden diagnostics: every malformed input pins its byte offset, the
    /// token the parser saw, and one member of the expected set (or the
    /// note when the failure is lexical).
    #[test]
    fn golden_diagnostics_on_malformed_inputs() {
        // (input, offset, found, one expected token or "" to skip).
        let pattern_cases: &[(&str, usize, &str, &str)] = &[
            ("session/c", 0, "name 'session'", "'/'"),
            ("/", 1, "end of input", "a label name"),
            ("//", 2, "end of input", "'*'"),
            ("/s/c[", 5, "end of input", "a label name"),
            ("/s/c]", 4, "']'", "end of input"),
            ("/s/c[count(e) >= ]", 17, "']'", "a number"),
            ("/a[count(b)]", 11, "']'", "'>='"),
            ("/a[at-least x]", 12, "name 'x'", "a number"),
            ("/a[@]", 4, "']'", "an attribute name"),
            ("/a[x = ]", 7, "']'", "a quoted string"),
            ("/a[b and ]", 9, "']'", "a label name"),
        ];
        for &(src, offset, found, expected) in pattern_cases {
            let err = parse_pattern(src).unwrap_err();
            assert_eq!(err.offset, offset, "offset of {src:?}: {err}");
            assert_eq!(err.found, found, "found-token of {src:?}: {err}");
            if !expected.is_empty() {
                assert!(
                    err.expected.contains(&expected),
                    "{src:?}: expected set {:?} lacks {expected:?}",
                    err.expected
                );
            }
        }

        // Lexical failures carry a note instead of an expected set.
        let err = parse_pattern("/a[x = \"unterminated").unwrap_err();
        assert_eq!(err.offset, 7);
        assert_eq!(err.found, "unterminated string");
        assert!(err.note.as_deref().unwrap().contains("closing"));

        let err = parse_pattern("/a$b").unwrap_err();
        assert_eq!(err.offset, 2);
        assert_eq!(err.found, "'$'");
        assert!(err.note.as_deref().unwrap().contains("pattern-language"));

        // Semantic notes keep the offset of the offending token.
        let err = parse_pattern("/s/c[count(e) = 3]").unwrap_err();
        assert_eq!(err.offset, 14);
        assert!(err.note.as_deref().unwrap().contains("positive"));

        // FD-shaped inputs report the same typed diagnostics.
        let err = parse_fd_expr("/s  candidate -> x").unwrap_err();
        assert!(err.expected.contains(&"':'"));
        let err = parse_fd_expr("/c : a -> ").unwrap_err();
        assert_eq!((err.offset, err.found.as_str()), (10, "end of input"));
        let err = parse_fd_expr("/c : a").unwrap_err();
        assert!(err.expected.contains(&"'->'"));
        let err = parse_fd_expr("-> x").unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.expected.contains(&"'/'"));
    }
}
