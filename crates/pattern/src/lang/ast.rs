//! Abstract syntax of the textual pattern language and its canonical
//! pretty-printer.
//!
//! The printer is *canonical*: sugar forms (`at-least n p`, `count(p) > n`,
//! `child::`, `descendant::`) normalize at parse time, so
//! `parse(p.to_text()) == p` for every AST value the parser can produce —
//! the round-trip property the fuzzing suite checks with random ASTs from
//! `regtree-gen`.

use std::fmt;

/// The axis connecting a step to its predecessor node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — the step's node is a child of the predecessor.
    Child,
    /// `//` — the step's node is any strict descendant.
    Descendant,
}

/// The node test of one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    /// An element (or other plain) label, e.g. `candidate`.
    Name(String),
    /// `*` — any single label.
    Wildcard,
    /// `@name` — the attribute label `@name`.
    Attribute(String),
    /// `text()` — the text-node label `#text`.
    Text,
}

/// One location step: axis, node test, and a conjunction of predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// How this step's node relates to its predecessor.
    pub axis: Axis,
    /// The label test.
    pub test: NameTest,
    /// Conjunctive predicates (`[p and q][r]` ≡ `[p and q and r]`).
    pub predicates: Vec<Predicate>,
}

/// A predicate inside `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `p` — a witnessing occurrence of the relative path exists.
    Exists(RelPath),
    /// `p = "v"` — the node reached by `p` has string value `v`.
    ValueEq(RelPath, String),
    /// `count(p) >= n` — at least `n` disjoint occurrences of `p` exist.
    ///
    /// Both surface forms (`count(p) >= n`, `count(p) > n-1`, and
    /// `at-least n p`) normalize to this variant; the printer emits the
    /// `count(p) >= n` form.
    AtLeast(usize, RelPath),
}

/// A relative path (predicate operand, FD condition/target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelPath {
    /// The steps; the first step's [`Axis`] anchors it to the predicate's
    /// node (`Child` for a bare path, `Descendant` for `.//`).
    pub steps: Vec<Step>,
}

/// An absolute pattern path (`/…` or `//…`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The steps; the first step's [`Axis`] anchors it to the document
    /// root.
    pub steps: Vec<Step>,
}

/// Equality annotation on an FD condition/target path: `[V]` (value, the
/// default) or `[N]` (node identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EqTag {
    /// Compare selected nodes by string value.
    Value,
    /// Compare selected nodes by identity.
    Node,
}

/// A textual functional dependency
/// `context : p1, p2[N], … -> q` — the richer grammar behind
/// `PathFd::parse`, with descendant axes, wildcards, and counting
/// predicates allowed in every path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdExpr {
    /// The absolute context path.
    pub context: Pattern,
    /// Condition paths (relative to the context) with equality tags.
    pub conditions: Vec<(RelPath, EqTag)>,
    /// The target path with its equality tag.
    pub target: (RelPath, EqTag),
}

impl Pattern {
    /// Renders the canonical text form, which re-parses to an equal AST.
    ///
    /// Sugar normalizes: `at-least n p` prints as `count(p) >= n`,
    /// explicit `child::`/`descendant::` axes print as `/` and `.//`.
    ///
    /// ```
    /// use regtree_pattern::lang::parse_pattern;
    ///
    /// let p = parse_pattern("/session//candidate[at-least 2 child::exam]/level").unwrap();
    /// assert_eq!(p.to_text(), "/session//candidate[count(exam) >= 2]/level");
    /// assert_eq!(parse_pattern(&p.to_text()).unwrap(), p);
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        fmt_steps(&self.steps, true, &mut out);
        out
    }
}

impl RelPath {
    /// Renders the canonical text form of the relative path.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        fmt_steps(&self.steps, false, &mut out);
        out
    }
}

impl FdExpr {
    /// Renders the canonical one-line FD form
    /// (`context : conditions -> target`), which re-parses to an equal AST.
    pub fn to_text(&self) -> String {
        let mut out = self.context.to_text();
        out.push_str(" :");
        for (i, (path, eq)) in self.conditions.iter().enumerate() {
            out.push_str(if i == 0 { " " } else { ", " });
            out.push_str(&path.to_text());
            if *eq == EqTag::Node {
                out.push_str("[N]");
            }
        }
        out.push_str(" -> ");
        out.push_str(&self.target.0.to_text());
        if self.target.1 == EqTag::Node {
            out.push_str("[N]");
        }
        out
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl fmt::Display for RelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl fmt::Display for FdExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn fmt_steps(steps: &[Step], absolute: bool, out: &mut String) {
    for (i, step) in steps.iter().enumerate() {
        match (i, absolute, step.axis) {
            (0, false, Axis::Child) => {}
            (0, false, Axis::Descendant) => out.push_str(".//"),
            (_, _, Axis::Child) => out.push('/'),
            (_, _, Axis::Descendant) => out.push_str("//"),
        }
        match &step.test {
            NameTest::Name(n) => out.push_str(n),
            NameTest::Wildcard => out.push('*'),
            NameTest::Attribute(n) => {
                out.push('@');
                out.push_str(n);
            }
            NameTest::Text => out.push_str("text()"),
        }
        if !step.predicates.is_empty() {
            out.push('[');
            for (j, pred) in step.predicates.iter().enumerate() {
                if j > 0 {
                    out.push_str(" and ");
                }
                match pred {
                    Predicate::Exists(p) => out.push_str(&p.to_text()),
                    Predicate::ValueEq(p, v) => {
                        out.push_str(&p.to_text());
                        out.push_str(" = \"");
                        for c in v.chars() {
                            if c == '"' || c == '\\' {
                                out.push('\\');
                            }
                            out.push(c);
                        }
                        out.push('"');
                    }
                    Predicate::AtLeast(n, p) => {
                        out.push_str("count(");
                        out.push_str(&p.to_text());
                        out.push_str(&format!(") >= {n}"));
                    }
                }
            }
            out.push(']');
        }
    }
}
