//! The textual RTP pattern language: an XPath-ish axis/predicate syntax
//! with counting constraints, compiled to regular tree patterns.
//!
//! ```text
//! /session//candidate[@status = "open" and count(vote) >= 3]/score
//! ```
//!
//! The language is documented in full in `docs/PATTERN_LANGUAGE.md` (EBNF,
//! semantics, and the construct→template compilation table). In brief:
//!
//! * `/` is the child axis, `//` the descendant axis, `*` the label
//!   wildcard, `@name` an attribute test, `text()` the text-node test;
//! * `[p and q]` is a conjunctive, positive, existential predicate whose
//!   operands are relative paths (optionally `.//`-anchored);
//! * `[p = "v"]` is a value test on the node reached by `p`;
//! * `[count(p) >= n]` (equivalently `[at-least n p]`) is a **counting
//!   predicate**: at least `n` disjoint occurrences of `p`, compiled by
//!   bounded repetition of predicate branches in the template.
//!
//! The pipeline is three stages with a round-tripping printer:
//!
//! * [`parse_pattern`] / [`parse_fd_expr`] — text → spanned AST
//!   ([`Pattern`], [`FdExpr`]); errors are [`ParseError`] values carrying a
//!   byte offset and the set of tokens that would have been accepted;
//! * [`Pattern::to_text`] — AST → canonical text (`parse ∘ print = id`);
//! * [`Pattern::compile`] — AST → [`CompiledPattern`], a
//!   [`RegularTreePattern`](crate::RegularTreePattern) plus the value
//!   tests, which templates cannot express and evaluation applies as a
//!   mapping filter.
//!
//! Semantics caveats (inherent to the formalism, shared with
//! [`corexpath`](crate::corexpath)): sibling template branches map to
//! *distinct* children in *document order* with disjoint subtrees. This is
//! exactly what makes counting-by-branch-repetition correct — `n` repeated
//! branches require `n` distinct witnessing children — and also what makes
//! the translation stricter than XPath for predicates followed by a
//! continuation step (see `docs/PATTERN_LANGUAGE.md` §"Differences from
//! XPath 1.0").

use std::fmt;

pub mod ast;
pub mod compile;
mod lex;
mod parse;

pub use ast::{Axis, EqTag, FdExpr, NameTest, Pattern, Predicate, RelPath, Step};
pub use compile::{append_relpath, string_value, CompileError, CompiledPattern};
pub use parse::{parse_fd_expr, parse_pattern};

/// Error raised while lexing or parsing pattern-language text.
///
/// Carries the byte offset of the offending character, a description of
/// what was found there, and the set of constructs the parser would have
/// accepted — so CLI and daemon diagnostics can point at the exact
/// position. `note` holds semantic explanations (e.g. why `count(p) <= n`
/// is rejected) that go beyond token expectations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source where the error was detected.
    pub offset: usize,
    /// Description of what was found at `offset` (a token, a character, or
    /// `end of input`).
    pub found: String,
    /// The constructs that would have been accepted at `offset`, named as
    /// they appear in the grammar (empty for lexical/semantic errors).
    pub expected: Vec<&'static str>,
    /// Optional semantic explanation.
    pub note: Option<String>,
}

impl ParseError {
    pub(crate) fn new(offset: usize, found: impl Into<String>, expected: &[&'static str]) -> Self {
        ParseError {
            offset,
            found: found.into(),
            expected: expected.to_vec(),
            note: None,
        }
    }

    pub(crate) fn note(offset: usize, found: impl Into<String>, note: impl Into<String>) -> Self {
        ParseError {
            offset,
            found: found.into(),
            expected: Vec::new(),
            note: Some(note.into()),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern parse error at byte {}", self.offset)?;
        if !self.found.is_empty() {
            write!(f, ": found {}", self.found)?;
        }
        if !self.expected.is_empty() {
            write!(f, ", expected ")?;
            for (i, e) in self.expected.iter().enumerate() {
                match i {
                    0 => {}
                    _ if i + 1 == self.expected.len() => write!(f, " or ")?,
                    _ => write!(f, ", ")?,
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(n) = &self.note {
            write!(f, ": {n}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}
