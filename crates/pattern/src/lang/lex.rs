//! Lexer for the textual pattern language: byte-offset spanned tokens.

use super::ParseError;

/// One token. Every token remembers nothing but its payload; the span
/// (byte offset of the first character) travels alongside in the token
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// `/`
    Slash,
    /// `//`
    DSlash,
    /// `.//`
    DotDSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `@`
    At,
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `!=`
    Ne,
    /// A label name / keyword.
    Name(String),
    /// An unsigned integer.
    Number(usize),
    /// A double-quoted string (unescaped payload).
    Str(String),
}

impl Tok {
    /// Human description used in "found X" diagnostics.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Slash => "'/'".into(),
            Tok::DSlash => "'//'".into(),
            Tok::DotDSlash => "'.//'".into(),
            Tok::LBracket => "'['".into(),
            Tok::RBracket => "']'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::At => "'@'".into(),
            Tok::Star => "'*'".into(),
            Tok::Comma => "','".into(),
            Tok::Colon => "':'".into(),
            Tok::ColonColon => "'::'".into(),
            Tok::Arrow => "'->'".into(),
            Tok::Eq => "'='".into(),
            Tok::Ge => "'>='".into(),
            Tok::Gt => "'>'".into(),
            Tok::Le => "'<='".into(),
            Tok::Lt => "'<'".into(),
            Tok::Ne => "'!='".into(),
            Tok::Name(n) => format!("name '{n}'"),
            Tok::Number(n) => format!("number {n}"),
            Tok::Str(s) => format!("string {s:?}"),
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b'#'
}

fn is_name_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'#')
}

/// Lexes `src` into spanned tokens.
///
/// `-` and `.` are name characters only when *followed by* another name
/// character, so `exam-date` and `first.Job` are single names while `a->b`
/// and `a.//b` tokenize as a name followed by `->` / `.//`.
pub(crate) fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes[pos].is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let peek = |off: usize| bytes.get(pos + off).copied();
        let tok = match bytes[pos] {
            b'/' => {
                if peek(1) == Some(b'/') {
                    pos += 2;
                    Tok::DSlash
                } else {
                    pos += 1;
                    Tok::Slash
                }
            }
            b'.' => {
                if peek(1) == Some(b'/') && peek(2) == Some(b'/') {
                    pos += 3;
                    Tok::DotDSlash
                } else {
                    return Err(ParseError::note(
                        start,
                        "'.'".to_string(),
                        "a lone '.' is only valid as the './/' descendant anchor",
                    ));
                }
            }
            b'[' => {
                pos += 1;
                Tok::LBracket
            }
            b']' => {
                pos += 1;
                Tok::RBracket
            }
            b'(' => {
                pos += 1;
                Tok::LParen
            }
            b')' => {
                pos += 1;
                Tok::RParen
            }
            b'@' => {
                pos += 1;
                Tok::At
            }
            b'*' => {
                pos += 1;
                Tok::Star
            }
            b',' => {
                pos += 1;
                Tok::Comma
            }
            b':' => {
                if peek(1) == Some(b':') {
                    pos += 2;
                    Tok::ColonColon
                } else {
                    pos += 1;
                    Tok::Colon
                }
            }
            b'-' => {
                if peek(1) == Some(b'>') {
                    pos += 2;
                    Tok::Arrow
                } else {
                    return Err(ParseError::new(start, "'-'", &["'->'"]));
                }
            }
            b'=' => {
                pos += 1;
                Tok::Eq
            }
            b'>' => {
                if peek(1) == Some(b'=') {
                    pos += 2;
                    Tok::Ge
                } else {
                    pos += 1;
                    Tok::Gt
                }
            }
            b'<' => {
                if peek(1) == Some(b'=') {
                    pos += 2;
                    Tok::Le
                } else {
                    pos += 1;
                    Tok::Lt
                }
            }
            b'!' => {
                if peek(1) == Some(b'=') {
                    pos += 2;
                    Tok::Ne
                } else {
                    return Err(ParseError::new(start, "'!'", &["'!='"]));
                }
            }
            b'"' => {
                pos += 1;
                let mut out = String::new();
                loop {
                    match bytes.get(pos) {
                        None => {
                            return Err(ParseError::note(
                                start,
                                "unterminated string",
                                "expected a closing '\"'",
                            ));
                        }
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => match bytes.get(pos + 1) {
                            Some(&c @ (b'"' | b'\\')) => {
                                out.push(c as char);
                                pos += 2;
                            }
                            _ => {
                                return Err(ParseError::note(
                                    pos,
                                    "'\\'",
                                    "only '\\\"' and '\\\\' escapes are supported in strings",
                                ));
                            }
                        },
                        Some(_) => {
                            // Advance one whole UTF-8 scalar.
                            let rest = &src[pos..];
                            let c = rest.chars().next().expect("in-bounds");
                            out.push(c);
                            pos += c.len_utf8();
                        }
                    }
                }
                Tok::Str(out)
            }
            b if b.is_ascii_digit() => {
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let n = src[start..pos].parse::<usize>().map_err(|_| {
                    ParseError::note(start, src[start..pos].to_string(), "number out of range")
                })?;
                Tok::Number(n)
            }
            b if is_name_start(b) => {
                pos += 1;
                while pos < bytes.len() {
                    let b = bytes[pos];
                    // '-' and '.' continue the name only when another name
                    // character follows (so 'a->b' and 'a.//b' split).
                    let continues = b.is_ascii_alphanumeric()
                        || matches!(b, b'_' | b'#')
                        || (matches!(b, b'-' | b'.')
                            && bytes.get(pos + 1).copied().is_some_and(is_name_continue));
                    if !continues {
                        break;
                    }
                    pos += 1;
                }
                Tok::Name(src[start..pos].to_string())
            }
            other => {
                return Err(ParseError::note(
                    start,
                    format!("{:?}", other as char),
                    "not a pattern-language character",
                ));
            }
        };
        toks.push((start, tok));
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn axes_and_separators() {
        assert_eq!(
            kinds("/a//b"),
            vec![
                Tok::Slash,
                Tok::Name("a".into()),
                Tok::DSlash,
                Tok::Name("b".into())
            ]
        );
        assert_eq!(kinds(".//x")[0], Tok::DotDSlash);
    }

    #[test]
    fn names_with_interior_punctuation() {
        assert_eq!(
            kinds("first.Job-Year"),
            vec![Tok::Name("first.Job-Year".into())]
        );
        assert_eq!(kinds("#text"), vec![Tok::Name("#text".into())]);
        // '-' before '>' ends the name: 'a->b' is an FD arrow.
        assert_eq!(
            kinds("a->b"),
            vec![Tok::Name("a".into()), Tok::Arrow, Tok::Name("b".into())]
        );
        // '.' before '//' ends the name.
        assert_eq!(
            kinds("a.//b"),
            vec![Tok::Name("a".into()), Tok::DotDSlash, Tok::Name("b".into())]
        );
    }

    #[test]
    fn comparison_operators_and_strings() {
        assert_eq!(
            kinds("count(x) >= 3"),
            vec![
                Tok::Name("count".into()),
                Tok::LParen,
                Tok::Name("x".into()),
                Tok::RParen,
                Tok::Ge,
                Tok::Number(3)
            ]
        );
        assert_eq!(
            kinds("> < >= <= != ="),
            vec![Tok::Gt, Tok::Lt, Tok::Ge, Tok::Le, Tok::Ne, Tok::Eq]
        );
        assert_eq!(
            kinds(r#""a \"b\" \\c""#),
            vec![Tok::Str(r#"a "b" \c"#.into())]
        );
    }

    #[test]
    fn lex_errors_carry_offsets() {
        assert_eq!(lex("a $ b").unwrap_err().offset, 2);
        assert_eq!(lex("\"open").unwrap_err().offset, 0);
        assert_eq!(lex("x - y").unwrap_err().offset, 2);
        assert_eq!(lex("a . b").unwrap_err().offset, 2);
    }
}
