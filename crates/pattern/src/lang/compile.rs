//! AST → template compilation, value-test evaluation, and the
//! `CompiledPattern` wrapper.
//!
//! Each step contributes to the regex of a template edge; consecutive
//! predicate-free steps merge into a single edge (mirroring
//! [`corexpath`](crate::corexpath)), descendant axes contribute an `_*`
//! prefix, and counting predicates `[count(p) >= n]` expand into `n`
//! repeated predicate branches. Branch repetition counts *disjoint*
//! occurrences because Definition 2 maps sibling branches to distinct
//! children with disjoint subtrees.
//!
//! Templates cannot express value tests (`[p = "v"]`), so compilation
//! collects them as `(template node, expected value)` pairs and
//! [`CompiledPattern::evaluate`] filters mappings by the string value of
//! each test node's image.

use std::fmt;

use regtree_alphabet::{Alphabet, LabelKind};
use regtree_automata::Regex;
use regtree_xml::{Document, NodeId};

use super::ast::{Axis, NameTest, Pattern, Predicate, Step};
use super::{parse_pattern, ParseError};
use crate::pattern::{PatternError, RegularTreePattern};
use crate::template::{Template, TemplateError, TemplateNodeId};

/// Error raised compiling a pattern AST into a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Building a template edge failed.
    Template(TemplateError),
    /// Assembling the selected tuple failed.
    Pattern(PatternError),
    /// A value test appeared in a context that cannot evaluate one (FD and
    /// update-class patterns run through engines that see only the
    /// template).
    ValueTest,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Template(e) => write!(f, "template: {e}"),
            CompileError::Pattern(e) => write!(f, "pattern: {e}"),
            CompileError::ValueTest => write!(
                f,
                "value tests ([p = \"v\"]) are only supported in standalone pattern \
                 evaluation, not in FD or update-class patterns"
            ),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Template(e) => Some(e),
            CompileError::Pattern(e) => Some(e),
            CompileError::ValueTest => None,
        }
    }
}

impl From<TemplateError> for CompileError {
    fn from(e: TemplateError) -> CompileError {
        CompileError::Template(e)
    }
}

impl From<PatternError> for CompileError {
    fn from(e: PatternError) -> CompileError {
        CompileError::Pattern(e)
    }
}

/// A compiled textual pattern: the regular tree pattern plus the value
/// tests, which the template cannot carry and evaluation applies as a
/// mapping filter.
#[derive(Clone, Debug)]
pub struct CompiledPattern {
    ast: Pattern,
    pattern: RegularTreePattern,
    value_tests: Vec<(TemplateNodeId, String)>,
}

impl CompiledPattern {
    /// One-shot convenience: parse and compile in a single call.
    ///
    /// Compilation errors (which have no source offset) are reported at
    /// the end of the input.
    pub fn from_text(alphabet: &Alphabet, src: &str) -> Result<CompiledPattern, ParseError> {
        parse_pattern(src)?
            .compile(alphabet)
            .map_err(|e| ParseError::note(src.len(), "", e.to_string()))
    }

    /// The parsed AST; `self.ast().to_text()` is the canonical form.
    pub fn ast(&self) -> &Pattern {
        &self.ast
    }

    /// The underlying regular tree pattern.
    pub fn pattern(&self) -> &RegularTreePattern {
        &self.pattern
    }

    /// The value tests: each `(w, v)` requires the image of template node
    /// `w` to have string value `v`.
    pub fn value_tests(&self) -> &[(TemplateNodeId, String)] {
        &self.value_tests
    }

    /// Evaluates on a document: the selected tuples over all mappings that
    /// pass every value test, deduplicated in first-seen order.
    pub fn evaluate(&self, doc: &Document) -> Vec<Vec<NodeId>> {
        if self.value_tests.is_empty() {
            return self.pattern.evaluate(doc);
        }
        let mut out: Vec<Vec<NodeId>> = Vec::new();
        for m in self.pattern.mappings(doc) {
            if self
                .value_tests
                .iter()
                .all(|(w, v)| string_value(doc, m.image(*w)) == *v)
            {
                let tuple: Vec<NodeId> = self
                    .pattern
                    .selected()
                    .iter()
                    .map(|&w| m.image(w))
                    .collect();
                if !out.contains(&tuple) {
                    out.push(tuple);
                }
            }
        }
        out
    }
}

impl Pattern {
    /// Compiles the AST into a [`CompiledPattern`] over `alphabet`,
    /// selecting the node of the final step (monadic).
    pub fn compile(&self, alphabet: &Alphabet) -> Result<CompiledPattern, CompileError> {
        let mut template = Template::new(alphabet.clone());
        let mut values = Vec::new();
        let root = template.root();
        let selected = build_steps(&mut template, root, &self.steps, Some(&mut values))?;
        let pattern = RegularTreePattern::monadic(template, selected)?;
        Ok(CompiledPattern {
            ast: self.clone(),
            pattern,
            value_tests: values,
        })
    }
}

/// The string value of a node: its own value for attributes and text
/// nodes, the document-order concatenation of descendant text values for
/// elements (XPath's element string-value).
pub fn string_value(doc: &Document, n: NodeId) -> String {
    if let Some(v) = doc.value(n) {
        return v.to_string();
    }
    let mut out = String::new();
    for d in doc.descendants_or_self(n) {
        if doc.kind(d) == LabelKind::Text {
            if let Some(v) = doc.value(d) {
                out.push_str(v);
            }
        }
    }
    out
}

/// Appends a relative path's steps below `from`, rejecting value tests.
///
/// This is the entry point FD compilation (in `regtree-core`) uses to
/// build condition/target branches: FDs run through engines that evaluate
/// the template only, so a value test inside one is a [`CompileError`].
/// Returns the template node of the final step.
pub fn append_relpath(
    template: &mut Template,
    from: TemplateNodeId,
    steps: &[Step],
) -> Result<TemplateNodeId, CompileError> {
    build_steps(template, from, steps, None)
}

/// Regex contribution of one step (without its axis prefix).
pub(crate) fn test_regex(alphabet: &Alphabet, test: &NameTest) -> Regex {
    match test {
        NameTest::Name(n) => Regex::Atom(alphabet.intern(n)),
        NameTest::Wildcard => Regex::AnyAtom,
        NameTest::Attribute(n) => Regex::Atom(alphabet.intern(&format!("@{n}"))),
        NameTest::Text => Regex::Atom(alphabet.intern(Alphabet::TEXT_NAME)),
    }
}

/// Core builder: appends `steps` below `from`, merging predicate-free
/// steps into single edges and expanding counting predicates into
/// repeated branches. `values` collects value tests when provided;
/// `None` makes a value test an error.
fn build_steps(
    template: &mut Template,
    from: TemplateNodeId,
    steps: &[Step],
    mut values: Option<&mut Vec<(TemplateNodeId, String)>>,
) -> Result<TemplateNodeId, CompileError> {
    let alphabet = template.alphabet().clone();
    let mut current = from;
    let mut pending: Vec<Regex> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        if step.axis == Axis::Descendant {
            pending.push(Regex::AnyAtom.star());
        }
        pending.push(test_regex(&alphabet, &step.test));
        if !step.predicates.is_empty() || i + 1 == steps.len() {
            let regex = Regex::seq(pending.drain(..));
            current = template.add_child(current, regex)?;
            for pred in &step.predicates {
                match pred {
                    Predicate::Exists(p) => {
                        build_steps(template, current, &p.steps, values.as_deref_mut())?;
                    }
                    Predicate::ValueEq(p, v) => {
                        // The path may itself carry nested value tests, so
                        // recurse with the same collector.
                        let node = build_steps(template, current, &p.steps, values.as_deref_mut())?;
                        match values.as_deref_mut() {
                            Some(vs) => vs.push((node, v.clone())),
                            None => return Err(CompileError::ValueTest),
                        }
                    }
                    Predicate::AtLeast(n, p) => {
                        for _ in 0..*n {
                            build_steps(template, current, &p.steps, values.as_deref_mut())?;
                        }
                    }
                }
            }
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regtree_xml::parse_document;

    fn eval(a: &Alphabet, src: &str, doc_src: &str) -> usize {
        let p = CompiledPattern::from_text(a, src).unwrap();
        let doc = parse_document(a, doc_src).unwrap();
        p.evaluate(&doc).len()
    }

    #[test]
    fn agrees_with_corexpath_on_the_common_fragment() {
        let a = Alphabet::new();
        let doc_src = "<s><c><e><m/></e><z/></c><c><e/><z/></c><d><m/></d></s>";
        let doc = parse_document(&a, doc_src).unwrap();
        for q in [
            "/s/c",
            "/s/c/z",
            "//m",
            "/s//m",
            "/s/*/e",
            "/s/c[e/m]/z",
            "/s/c[.//m]/z",
            "/s/c[e]/z",
        ] {
            let lang = CompiledPattern::from_text(&a, q).unwrap();
            let xp = crate::corexpath::parse_corexpath(&a, q).unwrap();
            assert_eq!(lang.evaluate(&doc), xp.evaluate(&doc), "query {q}");
        }
    }

    #[test]
    fn counting_predicates_count_disjoint_children() {
        let a = Alphabet::new();
        let doc = "<s><c><v/><v/><v/></c><c><v/></c><c/></s>";
        assert_eq!(eval(&a, "/s/c[count(v) >= 0]", doc), 3);
        assert_eq!(eval(&a, "/s/c[count(v) >= 1]", doc), 2);
        assert_eq!(eval(&a, "/s/c[count(v) >= 2]", doc), 1);
        assert_eq!(eval(&a, "/s/c[count(v) >= 3]", doc), 1);
        assert_eq!(eval(&a, "/s/c[count(v) >= 4]", doc), 0);
        assert_eq!(eval(&a, "/s/c[count(v) > 2]", doc), 1);
    }

    #[test]
    fn counting_multi_step_paths_counts_witnessing_subtrees() {
        let a = Alphabet::new();
        // count(e/m) counts distinct e-children that contain an m — the
        // two m's inside ONE e are a single witnessing subtree.
        let doc = "<s><c><e><m/><m/></e></c><c><e><m/></e><e><m/></e></c></s>";
        assert_eq!(eval(&a, "/s/c[count(e/m) >= 2]", doc), 1);
        assert_eq!(eval(&a, "/s/c[count(e/m) >= 1]", doc), 2);
    }

    #[test]
    fn value_tests_filter_mappings() {
        let a = Alphabet::new();
        let doc = r#"<s><c status="open"><m>10</m></c><c status="closed"><m>9</m></c></s>"#;
        assert_eq!(eval(&a, r#"/s/c[@status = "open"]"#, doc), 1);
        assert_eq!(eval(&a, r#"/s/c[@status = "missing"]"#, doc), 0);
        // Element string-value: concatenated descendant text.
        assert_eq!(eval(&a, r#"/s/c[m = "10"]"#, doc), 1);
        // A predicate branch must precede the continuation in document
        // order; attributes come first, so test them before elements.
        assert_eq!(eval(&a, r#"/s/c[@status = "closed"]/m"#, doc), 1);
    }

    #[test]
    fn value_tests_are_rejected_on_the_fd_path() {
        let a = Alphabet::new();
        let p = parse_pattern(r#"/s/c[x = "1"]"#).unwrap();
        let mut t = Template::new(a.clone());
        let root = t.root();
        assert_eq!(
            append_relpath(&mut t, root, &p.steps),
            Err(CompileError::ValueTest)
        );
        // But plain compilation supports them.
        assert_eq!(p.compile(&a).unwrap().value_tests().len(), 1);
    }

    #[test]
    fn from_text_reports_parse_and_compile_errors() {
        let a = Alphabet::new();
        let err = CompiledPattern::from_text(&a, "/s/c[").unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(CompiledPattern::from_text(&a, "/s/c").is_ok());
    }

    #[test]
    fn counting_zero_is_trivially_true() {
        let a = Alphabet::new();
        let p = CompiledPattern::from_text(&a, "/s/c[count(v) >= 0]").unwrap();
        // No branches added: template is root + merged s/c node.
        assert_eq!(p.pattern().template().len(), 2);
    }
}
