//! Proposition 1: the PSPACE-hardness reduction from regular-expression
//! inclusion to update–FD independence (Figures 7–8), run on concrete
//! regex pairs.
//!
//! ```sh
//! cargo run --example pspace_reduction
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use regtree::prelude::*;
use regtree_core::{build_patterns, build_reduction, gadget_alphabet};

fn main() {
    let a = gadget_alphabet();
    let mut rng = SmallRng::seed_from_u64(2010);

    let pairs = [
        ("D+", "D/D+"),      // η ⊄ η' (the word D)
        ("B/B", "B+"),       // η ⊆ η'
        ("(B|D)+", "B+|D+"), // mixed words are counterexamples
        ("B*/D", "B*/D"),    // equal languages
        ("D/B?", "D/B"),     // ε-side counterexample
    ];

    for (eta_src, etap_src) in pairs {
        let eta = parse_regex(&a, eta_src).expect("parses");
        let etap = parse_regex(&a, etap_src).expect("parses");
        println!("η = {eta_src:<10} η' = {etap_src:<10}");
        match build_reduction(&a, &eta, &etap, &mut rng) {
            None => {
                println!("  η ⊆ η': no impact exists — fd is independent of U\n");
            }
            Some(inst) => {
                let witness: Vec<String> = inst
                    .witness_word
                    .iter()
                    .map(|&s| a.name(s).to_string())
                    .collect();
                println!("  η ⊄ η': counterexample word w = {}", witness.join("·"));
                println!(
                    "  Figure-8 document ({} nodes) satisfies fd: {}",
                    inst.doc.len(),
                    satisfies(&inst.fd, &inst.doc)
                );
                let after = inst.update.apply_cloned(&inst.doc).expect("applies");
                println!(
                    "  after grafting an η'·# path under the updated node: fd holds: {}",
                    satisfies(&inst.fd, &after)
                );
                assert!(satisfies(&inst.fd, &inst.doc));
                assert!(!satisfies(&inst.fd, &after));
                println!("  → concrete impact exhibited (hardness direction verified)\n");
            }
        }
    }

    // The sufficient criterion, being polynomial, cannot decide these
    // instances — it conservatively reports "unknown" whenever the gadget
    // patterns overlap:
    let (fd, class) = build_patterns(
        &a,
        &parse_regex(&a, "D+").expect("parses"),
        &parse_regex(&a, "D/D+").expect("parses"),
    );
    let analysis = Analyzer::builder().build().independence(&fd, &class);
    println!(
        "IC on the gadget patterns (η = D+, η' = D/D+): independent = {} — as expected, \
         the polynomial criterion does not decide PSPACE-hard instances",
        analysis.verdict.is_independent()
    );
}
