//! How precise is the sufficient criterion? (An extension of the paper's
//! missing experimental study.)
//!
//! The criterion is sound — `Independent` is always right — but not
//! complete: `Unknown` may be a false alarm. For random (FD, update-class)
//! pairs this example classifies every `Unknown` by a bounded,
//! witness-guided search for a *constructive* impact:
//!
//! * `ProvenIndependent` — the criterion settled it;
//! * `ConfirmedImpact`   — `Unknown` was a true alarm (an actual
//!   document+update breaking the FD was found);
//! * `Unconfirmed`       — no impact found within the budget (a candidate
//!   false alarm, or an impact needing a larger document).
//!
//! ```sh
//! cargo run --release --example criterion_precision
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regtree::prelude::*;
use regtree_core::{classify_pair, PairClassification};

const LABELS: [&str; 3] = ["a", "b", "c"];

fn random_edge(rng: &mut SmallRng) -> String {
    let atoms = ["a", "b", "c", "a/b", "(a|b)", "b/c", "_"];
    atoms[rng.gen_range(0..atoms.len())].to_string()
}

fn random_fd(a: &Alphabet, rng: &mut SmallRng) -> Fd {
    let mut t = Template::new(a.clone());
    let ctx = t
        .add_child_str(t.root(), &random_edge(rng))
        .expect("proper");
    let mut selected = Vec::new();
    for _ in 0..rng.gen_range(1..=2usize) {
        selected.push(t.add_child_str(ctx, &random_edge(rng)).expect("proper"));
    }
    selected.push(t.add_child_str(ctx, &random_edge(rng)).expect("proper"));
    let p = RegularTreePattern::new(t, selected).expect("valid");
    regtree::core::fd::Fd::with_default_equality(p, ctx).expect("fd")
}

fn random_class(a: &Alphabet, rng: &mut SmallRng) -> UpdateClass {
    let mut t = Template::new(a.clone());
    let mut cur = t.root();
    for _ in 0..rng.gen_range(1..=2usize) {
        cur = t.add_child_str(cur, &random_edge(rng)).expect("proper");
    }
    UpdateClass::new(RegularTreePattern::monadic(t, cur).expect("valid")).expect("leaf")
}

fn main() {
    let a = Alphabet::with_labels(LABELS);
    let mut rng = SmallRng::seed_from_u64(20100322);

    let rounds = 300; // impact-search budget per Unknown pair
    let pairs = 120;

    let mut independent = 0usize;
    let mut confirmed = 0usize;
    let mut unconfirmed = 0usize;

    for _ in 0..pairs {
        let fd = random_fd(&a, &mut rng);
        let class = random_class(&a, &mut rng);
        match classify_pair(&fd, &class, None, rounds, &mut rng) {
            PairClassification::ProvenIndependent => independent += 1,
            PairClassification::ConfirmedImpact(w) => {
                confirmed += 1;
                // Double-check the constructive witness.
                assert!(satisfies(&fd, &w.doc));
                let after = w.update.apply_cloned(&w.doc).expect("applies");
                assert!(!satisfies(&fd, &after));
            }
            PairClassification::Unconfirmed => unconfirmed += 1,
        }
    }

    println!("random (FD, update-class) pairs over a 3-label alphabet: {pairs}");
    println!("  proven independent : {independent}");
    println!("  confirmed impact   : {confirmed}  (true alarms — criterion had to say Unknown)");
    println!(
        "  unconfirmed        : {unconfirmed}  (false-alarm candidates within budget {rounds})"
    );
    let alarms = confirmed + unconfirmed;
    if alarms > 0 {
        println!(
            "  measured precision lower bound: {confirmed}/{alarms} = {:.0}% of alarms confirmed real",
            100.0 * confirmed as f64 / alarms as f64
        );
    }
    println!(
        "\nSoundness cross-check: every ProvenIndependent pair has no impact by\n\
         Proposition 2; every confirmed witness was re-validated constructively."
    );
}
