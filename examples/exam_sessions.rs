//! The paper's running example, end to end: Figures 1–6 and Examples 1–6.
//!
//! ```sh
//! cargo run --example exam_sessions
//! ```

use regtree::prelude::*;
use regtree_gen as gen;

fn main() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let schema = gen::exam_schema(&a);

    println!("— Figure 1: the exam-session document —");
    println!(
        "{}",
        regtree::xml::to_xml_with(&doc, regtree::xml::SerializeOptions { indent: true })
    );
    println!("schema-valid: {}\n", schema.validate(&doc).is_ok());

    // ---- Figure 2: R1 and R2 ------------------------------------------
    println!("— Figure 2: evaluation semantics —");
    let r1 = gen::pattern_r1(&a);
    let r2 = gen::pattern_r2(&a);
    let r1_result = r1.evaluate(&doc);
    let r2_result = r2.evaluate(&doc);
    println!(
        "R1 (exams of two different candidates): {} pairs",
        r1_result.len()
    );
    for pair in &r1_result {
        println!(
            "  ({}, {})",
            doc.dewey_string(pair[0]),
            doc.dewey_string(pair[1])
        );
    }
    println!(
        "R2 (exams of the same candidate): {} pairs",
        r2_result.len()
    );
    assert_eq!(r1_result.len(), 4, "paper: four pairs selected by R1");
    assert_eq!(r2_result.len(), 2, "paper: two pairs selected by R2");

    // ---- Figure 3: order sensitivity -----------------------------------
    println!("\n— Figure 3: mappings respect node order —");
    let r3 = gen::pattern_r3(&a).evaluate(&doc);
    let r4 = gen::pattern_r4(&a).evaluate(&doc);
    println!("R3 (exam before level): {} level node(s)", r3.len());
    println!("R4 (level before exam): {} level node(s)", r4.len());
    assert!(
        !r3.is_empty() && r4.is_empty(),
        "paper: R3 nonempty, R4 empty"
    );

    // ---- Figures 4–5: the functional dependencies ----------------------
    println!("\n— Figures 4–5: functional dependencies —");
    for (name, what, fd) in [
        ("fd1", "same discipline+mark ⇒ same rank", gen::fd1(&a)),
        (
            "fd2",
            "no two exams of a discipline at one date",
            gen::fd2(&a),
        ),
        ("fd3", "same two marks ⇒ same level", gen::fd3(&a)),
        (
            "fd4",
            "fd3 restricted to candidates with toBePassed",
            gen::fd4(&a),
        ),
        (
            "fd5",
            "fd3 restricted to graduated candidates",
            gen::fd5(&a),
        ),
    ] {
        let holds = satisfies(&fd, &doc);
        let in_path_formalism = expressible_in_path_formalism(&fd).is_ok();
        println!("{name}: {what} — holds: {holds}, expressible in [8]: {in_path_formalism}");
    }
    assert!(expressible_in_path_formalism(&gen::fd1(&a)).is_ok());
    assert!(expressible_in_path_formalism(&gen::fd3(&a)).is_err());
    assert!(expressible_in_path_formalism(&gen::fd4(&a)).is_err());

    // ---- Figure 6 / Examples 4–5: updates ------------------------------
    println!("\n— Figure 6 / Examples 4–5: the update class U —");
    let class_u = gen::update_class_u(&a);
    let selected = class_u.selected_nodes(&doc);
    println!(
        "U selects {} node(s) on Figure 1 (only candidate 78 has exams to pass)",
        selected.len()
    );
    assert_eq!(selected.len(), 1);

    // Example 5: q1 (decrease the level) impacts fd3.
    let fd3 = gen::fd3(&a);
    // A document exhibiting the impact: two candidates with equal marks and
    // levels, one of them with a toBePassed child.
    let impact_doc = parse_document(
        &a,
        "<session>\
         <candidate IDN=\"1\">\
           <exam date=\"d\"><discipline>m</discipline><mark>8</mark><rank>1</rank></exam>\
           <exam date=\"e\"><discipline>p</discipline><mark>8</mark><rank>1</rank></exam>\
           <level>D</level><toBePassed><discipline>m</discipline></toBePassed>\
         </candidate>\
         <candidate IDN=\"2\">\
           <exam date=\"d\"><discipline>m</discipline><mark>8</mark><rank>1</rank></exam>\
           <exam date=\"e\"><discipline>p</discipline><mark>8</mark><rank>1</rank></exam>\
           <level>D</level><firstJob-Year>2010</firstJob-Year>\
         </candidate>\
         </session>",
    )
    .expect("well-formed");
    assert!(satisfies(&fd3, &impact_doc));
    let q1 = gen::update_q1(&a);
    let after = q1.apply_cloned(&impact_doc).expect("applies");
    println!(
        "Example 5 — q1 on a two-equal-candidates document: fd3 before={}, after={}",
        satisfies(&fd3, &impact_doc),
        satisfies(&fd3, &after)
    );
    assert!(!satisfies(&fd3, &after), "q1 impacts fd3 (Example 5)");

    // q2 (adding a comment below the level) also belongs to U.
    let q2 = gen::update_q2(&a);
    let after2 = q2.apply_cloned(&impact_doc).expect("applies");
    println!(
        "q2 (append <comment/>) also breaks fd3's value equality: {}",
        !satisfies(&fd3, &after2)
    );

    // ---- Example 6: independence in the context of the schema ----------
    println!("\n— Example 6 / Section 5: the independence criterion —");
    let fd5 = gen::fd5(&a);
    let no_schema = Analyzer::builder().build().independence(&fd5, &class_u);
    let schemad = Analyzer::builder().schema(schema).build();
    let with_schema = schemad.independence(&fd5, &class_u);
    println!(
        "fd5 vs U without schema: {}",
        verdict_str(&no_schema.verdict)
    );
    println!(
        "fd5 vs U with schema Sc (toBePassed XOR firstJob-Year): {}",
        verdict_str(&with_schema.verdict)
    );
    assert!(!no_schema.verdict.is_independent());
    assert!(with_schema.verdict.is_independent());

    let fd3_vs_u = schemad.independence(&fd3, &class_u);
    println!(
        "fd3 vs U with schema: {} (consistent with the Example 5 impact)",
        verdict_str(&fd3_vs_u.verdict)
    );
    assert!(!fd3_vs_u.verdict.is_independent());

    println!("\nAll paper assertions verified.");
}

fn verdict_str(v: &Verdict) -> &'static str {
    if v.is_independent() {
        "INDEPENDENT"
    } else {
        "unknown (criterion inconclusive)"
    }
}
