//! Section 3: regular tree patterns federate the path-based FD formalism
//! of [8] — and strictly extend it (Example 3).
//!
//! ```sh
//! cargo run --example path_fds
//! ```

use regtree::prelude::*;
use regtree_core::Inexpressibility;
use regtree_gen as gen;

fn main() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);

    // The paper's expr1 / expr2 in the [8] concrete syntax:
    let expr1 = "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank";
    let expr2 = "/session/candidate : exam/@date, exam/discipline -> exam[N]";

    println!("— expr1 (the paper's fd1) —");
    let fd1 = PathFd::parse(&a, expr1)
        .expect("parses")
        .to_fd(&a)
        .expect("translates");
    println!("template shape:\n{}", fd1.template().sketch());
    println!("holds on Figure 1: {}", satisfies(&fd1, &doc));

    println!("— expr2 (the paper's fd2, node-equality target) —");
    let fd2 = PathFd::parse(&a, expr2)
        .expect("parses")
        .to_fd(&a)
        .expect("translates");
    println!("template shape:\n{}", fd2.template().sketch());
    println!(
        "target is an internal node (prefix factorization): {}",
        !fd2.template().is_leaf(fd2.target())
    );
    println!("holds on Figure 1: {}", satisfies(&fd2, &doc));

    // Round trip: the trie construction yields patterns that pass the
    // [8]-expressibility check.
    assert!(expressible_in_path_formalism(&fd1).is_ok());
    assert!(expressible_in_path_formalism(&fd2).is_ok());

    // Example 3: fd3 and fd4 are beyond [8].
    println!("\n— Example 3: beyond the path formalism —");
    let fd3 = gen::fd3(&a);
    match expressible_in_path_formalism(&fd3) {
        Err(Inexpressibility::SiblingCommonPrefix(x, y)) => println!(
            "fd3 inexpressible in [8]: sibling edges n{} and n{} share the prefix 'exam' \
             (the trie construction would merge them)",
            x.0, y.0
        ),
        other => panic!("unexpected: {other:?}"),
    }
    let fd4 = gen::fd4(&a);
    match expressible_in_path_formalism(&fd4) {
        Err(Inexpressibility::UnselectedLeaf(n)) => println!(
            "fd4 inexpressible in [8]: leaf n{} (toBePassed) is neither condition nor target",
            n.0
        ),
        other => panic!("unexpected: {other:?}"),
    }

    // Both still work perfectly well as regular tree patterns:
    println!("\nfd3 holds on Figure 1: {}", satisfies(&fd3, &doc));
    println!("fd4 holds on Figure 1: {}", satisfies(&fd4, &doc));

    // A violating document for fd3 — two candidates with the same two marks
    // but different levels:
    let bad = parse_document(
        &a,
        "<session>\
         <candidate IDN=\"1\">\
           <exam date=\"a\"><discipline>m</discipline><mark>10</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>12</mark><rank>2</rank></exam>\
           <level>C</level><firstJob-Year>2010</firstJob-Year>\
         </candidate>\
         <candidate IDN=\"2\">\
           <exam date=\"a\"><discipline>m</discipline><mark>10</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>12</mark><rank>2</rank></exam>\
           <level>B</level><firstJob-Year>2011</firstJob-Year>\
         </candidate>\
         </session>",
    )
    .expect("well-formed");
    match check_fd(&fd3, &bad) {
        Err(v) => println!("\nfd3 violation detected: {}", v.describe(&bad)),
        Ok(()) => panic!("expected a violation"),
    }
}
