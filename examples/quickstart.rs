//! Quickstart: declare an FD and an update class, check documents, run the
//! independence criterion.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use regtree::prelude::*;

fn main() {
    // One shared label alphabet for everything.
    let alphabet = Alphabet::new();

    // A product catalog: within a catalog, two items with the same sku have
    // the same price.
    let fd = FdBuilder::new(alphabet.clone())
        .context("catalog")
        .condition("item/sku")
        .target("item/price")
        .build()
        .expect("fd builds");

    let doc = parse_document(
        &alphabet,
        "<catalog>\
           <item><sku>A-1</sku><price>10</price><stock>4</stock></item>\
           <item><sku>B-2</sku><price>15</price><stock>0</stock></item>\
           <item><sku>A-1</sku><price>10</price><stock>9</stock></item>\
         </catalog>",
    )
    .expect("well-formed XML");

    match check_fd(&fd, &doc) {
        Ok(()) => println!("catalog satisfies the FD (same sku ⇒ same price)"),
        Err(v) => println!("violated: {}", v.describe(&doc)),
    }

    // An update class: restocking touches only <stock> leaves.
    let restock = parse_corexpath(&alphabet, "/catalog/item/stock").expect("parses");
    let class = UpdateClass::new(restock).expect("selected node is a leaf");

    // One Analyzer serves every analysis: it caches compiled automata and
    // (optionally) governs runs with budgets — see `RunLimits`.
    let analyzer = Analyzer::builder().build();

    // The independence criterion: can ANY restocking update, on ANY
    // document, break the FD? (No document needed for the analysis.)
    let analysis = analyzer.independence(&fd, &class);
    match &analysis.verdict {
        Verdict::Independent => {
            println!("restocking is provably independent of the price FD");
        }
        Verdict::Unknown {
            witness, exhausted, ..
        } => {
            println!("criterion inconclusive");
            if let Some(r) = exhausted {
                println!("(run stopped early: {r})");
            }
            if let Some(w) = witness {
                println!("interaction witness:\n{}", to_xml(w));
            }
        }
        _ => unreachable!("future verdicts"),
    }
    println!(
        "work done: {} product states interned, {} frontier pushes",
        analysis.metrics.states_interned, analysis.metrics.frontier_pushes
    );

    // A price-rewriting class is *not* provably independent.
    let reprice = parse_corexpath(&alphabet, "/catalog/item/price").expect("parses");
    let class2 = UpdateClass::new(reprice).expect("leaf");
    let analysis2 = analyzer.independence(&fd, &class2);
    println!(
        "repricing independent? {}",
        analysis2.verdict.is_independent()
    );

    // And indeed a lopsided concrete repricing breaks the FD on our document:
    let mut broken = doc.clone();
    let targets = class2.selected_nodes(&broken);
    let first_price_text = broken.children(targets[0])[0];
    regtree::xml::set_value(&mut broken, first_price_text, "999").expect("price has a text child");
    match check_fd(&fd, &broken) {
        Ok(()) => println!("still satisfied"),
        Err(v) => println!("after a lopsided reprice: {}", v.describe(&broken)),
    }

    // Updates can also be executed through the library:
    let restock_all = Update::new(class, UpdateOp::SetText("100".into()));
    let restocked = restock_all.apply_cloned(&doc).expect("applies");
    println!(
        "restocked catalog still satisfies the FD: {}",
        satisfies(&fd, &restocked)
    );
}
