//! The paper's closing remark: “our results can thus be applied when the
//! classes of updates are specified with positive queries of CoreXPath.”
//!
//! This example declares update classes as CoreXPath expressions, translates
//! them to regular tree patterns, and runs the independence criterion
//! against a library-catalog FD.
//!
//! ```sh
//! cargo run --example corexpath_updates
//! ```

use regtree::prelude::*;

fn main() {
    let a = Alphabet::new();

    // Library catalog: within a library, two copies of the same ISBN are
    // shelved in the same section.
    let fd = FdBuilder::new(a.clone())
        .context("library")
        .condition("shelf/book/isbn")
        .target("shelf/book/section")
        .build()
        .expect("fd builds");

    let schema = Schema::parse(
        &a,
        "root: library\n\
         library: shelf*\n\
         shelf: book* inventory?\n\
         book: isbn section loan?\n\
         isbn: #text\n\
         section: #text\n\
         loan: @due\n\
         inventory: @counted\n",
    )
    .expect("schema parses");

    let updates = [
        // Circulation: loans come and go.
        "/library/shelf/book/loan",
        // Stock taking: inventory stamps per shelf.
        "/library/shelf/inventory",
        // Only books that are currently on loan get their loan slot touched.
        "/library/shelf/book[loan]/loan",
        // Re-shelving: the section label itself is rewritten.
        "/library/shelf/book/section",
        // Whole-book replacement.
        "/library/shelf/book",
    ];

    println!("FD: same isbn ⇒ same section (per library)\n");
    let analyzer = Analyzer::builder().schema(schema).build();
    for xpath in updates {
        let pattern = parse_corexpath(&a, xpath).expect("parses");
        let class = match UpdateClass::new(pattern) {
            Ok(c) => c,
            Err(e) => {
                println!("{xpath:<44} not a valid update class: {e}");
                continue;
            }
        };
        let analysis = analyzer.independence(&fd, &class);
        println!(
            "{xpath:<44} {}",
            if analysis.verdict.is_independent() {
                "INDEPENDENT — apply freely, the FD cannot break"
            } else {
                "unknown — revalidate after applying"
            }
        );
    }

    // Sanity: loan updates really cannot break the FD.
    let doc = parse_document(
        &a,
        "<library><shelf>\
           <book><isbn>i1</isbn><section>A</section><loan due=\"week\"/></book>\
           <book><isbn>i1</isbn><section>A</section></book>\
         </shelf></library>",
    )
    .expect("well-formed");
    assert!(satisfies(&fd, &doc));
    let loans = UpdateClass::new(parse_corexpath(&a, "/library/shelf/book/loan").expect("ok"))
        .expect("leaf");
    let renew = Update::new(
        loans,
        UpdateOp::Replace(TreeSpec::elem_named(
            &a,
            "loan",
            vec![TreeSpec::attr_named(&a, "@due", "month")],
        )),
    );
    let after = renew.apply_cloned(&doc).expect("applies");
    assert!(satisfies(&fd, &after));
    println!("\nconcrete loan renewal kept the FD, as guaranteed.");
}
