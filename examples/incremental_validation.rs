//! The experimental study the paper's conclusion calls for: “estimate how
//! much time it saves to launch the independence criterion instead of
//! verifying the functional dependency again.”
//!
//! A stream of updates arrives against exam-session documents of growing
//! size. Three strategies keep the FD guaranteed:
//!
//! 1. **revalidate** — apply the update, re-verify the FD on the whole
//!    document ([14]-style, needs the document);
//! 2. **incremental** — re-verify only when the update may touch the FD's
//!    relevant region (needs the document + stored state);
//! 3. **criterion** — run the IC once per update *class*; independent
//!    classes never trigger any document work at all.
//!
//! ```sh
//! cargo run --release --example incremental_validation
//! ```

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use regtree::prelude::*;
use regtree_gen as gen;

fn main() {
    let a = gen::exam_alphabet();
    let fd1 = gen::fd1(&a);
    let schema = gen::exam_schema(&a);
    let mut rng = SmallRng::seed_from_u64(42);

    // The update class: rewrite candidate levels (independent of fd1, which
    // only concerns discipline/mark/rank).
    let class = UpdateClass::new(parse_corexpath(&a, "/session/candidate/level").expect("parses"))
        .expect("leaf");
    let update = Update::new(class.clone(), UpdateOp::SetText("E".into()));

    // Strategy 3 pays this once, independent of every document:
    let t = Instant::now();
    let analyzer = Analyzer::builder().schema(schema).build();
    let analysis = analyzer.independence(&fd1, &class);
    let ic_time = t.elapsed();
    println!(
        "independence criterion: verdict = {}, one-off cost = {:.3?} (automaton size {})",
        if analysis.verdict.is_independent() {
            "INDEPENDENT"
        } else {
            "unknown"
        },
        ic_time,
        analysis.automaton_size,
    );
    assert!(analysis.verdict.is_independent());

    println!();
    println!(
        "{:>12} {:>10} {:>16} {:>16} {:>16}",
        "candidates", "nodes", "revalidate", "incremental", "criterion"
    );
    for &n_candidates in &[10usize, 100, 1_000, 10_000] {
        let doc = gen::generate_session(&a, n_candidates, 3, &mut rng);
        let nodes = doc.len();

        // 1. Full revalidation per update.
        let t = Instant::now();
        let result = revalidate_full(&fd1, &update, &doc).expect("applies");
        let revalidate_time = t.elapsed();
        assert!(result.is_ok(), "level updates cannot break fd1");

        // 2. Incremental checker (amortized: snapshot once, then recheck).
        let mut inc_doc = doc.clone();
        let mut checker = RelevantSetChecker::new(&fd1, &inc_doc);
        let t = Instant::now();
        let ok = checker
            .recheck(&fd1, &update, &mut inc_doc)
            .expect("applies");
        let incremental_time = t.elapsed();
        assert!(ok);

        // 3. The criterion already answered for the whole class: per update
        //    and per document the cost is zero (shown as the one-off cost
        //    amortized to a single class-level check).
        println!(
            "{:>12} {:>10} {:>16.3?} {:>16.3?} {:>16}",
            n_candidates, nodes, revalidate_time, incremental_time, "0 (class-level)"
        );
    }

    println!(
        "\nThe criterion's cost is constant in the document size; full revalidation \
         grows with the document — exactly the saving the paper anticipates."
    );
}
