//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so this workspace vendors the
//! slice of criterion's API its benches use: [`Criterion::benchmark_group`],
//! `sample_size`/`measurement_time`/`throughput`, `bench_function` /
//! `bench_with_input` with [`BenchmarkId`], `b.iter(..)`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is simple but
//! real: per benchmark it calibrates an iteration count per sample from a
//! warmup run, collects `sample_size` wall-clock samples, and prints
//! `min / median / max` per-iteration times (plus throughput when set).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported opaque value barrier (prevents the optimizer from deleting
/// benchmarked work).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display` (e.g. a candidate count).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id with just a function name.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: parameter.to_string(),
            parameter: None,
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Top-level benchmark driver; create groups from it.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher<'a> {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns_per_iter: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, storing per-iteration samples for the caller.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until ~10% of the measurement budget is
        // spent, counting iterations to estimate the per-iteration cost.
        let warmup_budget = (self.measurement_time / 10).max(Duration::from_millis(20));
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);

        // Pick iterations per sample so all samples fit the remaining budget.
        let budget_ns = self.measurement_time.as_nanos() as f64 * 0.9;
        let per_sample_ns = budget_ns / self.sample_size as f64;
        let iters = ((per_sample_ns / est_ns).floor() as u64).clamp(1, 1_000_000);

        self.samples_ns_per_iter.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter.push(elapsed / iters as f64);
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns_per_iter: &mut samples,
        };
        f(&mut bencher);
        self.report(&id, &samples);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (all reporting already happened inline).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[f64]) {
        let full = format!("{}/{}", self.name, id.render());
        if samples.is_empty() {
            println!("{full:<50} time: [no samples]");
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let mut line = format!(
            "{full:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median > 0.0 {
                let per_sec = count as f64 / (median / 1e9);
                line.push_str(&format!("  thrpt: {per_sec:.0} {unit}/s"));
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function callable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(10));
        let data = vec![3u64; 64];
        group.bench_with_input(BenchmarkId::new("sum", 64), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.bench_function("push", |b| b.iter(|| vec![1u8, 2, 3].len()));
        group.finish();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 10).render(), "f/10");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
