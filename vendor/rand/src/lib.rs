//! Offline vendored stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build container cannot reach crates.io, so this workspace vendors the
//! slice of `rand` it uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! uniform integer ranges via `gen_range`, `gen_bool`, and
//! [`rngs::SmallRng`] (xoshiro256++ seeded through splitmix64, matching the
//! upstream `small_rng` algorithm family). Deterministic: there is no OS
//! entropy source here; construct generators with `seed_from_u64`/`from_seed`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// The core trait every random number generator implements.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension trait with the convenience sampling API.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (e.g. `0..10`, `1..=6`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        // 53 random bits → uniform f64 in [0,1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (expanded via splitmix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64, as used by upstream rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling from range types, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-ish unbiased sampling of `u64` below `bound` (> 0).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply method with rejection on the biased zone.
    let zone = bound.wrapping_neg() % bound; // number of biased low values
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let off = uniform_u64_below(rng, span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64,
    u16 => u64,
    u32 => u64,
    u64 => u64,
    usize => u64,
    i8 => i64,
    i16 => i64,
    i32 => i64,
    i64 => i64,
    isize => i64,
);

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ (the upstream `SmallRng`
    /// algorithm family on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_900..3_100).contains(&hits), "p=0.25 hits: {hits}");
    }
}
