//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this workspace vendors the
//! subset of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_recursive`/`boxed`, [`strategy::Just`] and unions
//! (`prop_oneof!`), integer-range and `"[a-z]{0,3}"`-style string strategies,
//! `collection::vec`, `sample::Index`, `any::<T>()`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros backed by a deterministic runner.
//!
//! Unlike upstream there is no shrinking and no persisted failure file: a
//! failing case panics with the generator seed so it can be replayed by
//! rerunning the (fully deterministic) test binary.

#![deny(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner and its RNG.

    /// Reason carried by a rejected or failed case.
    pub type Reason = String;

    /// Outcome of one generated case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case did not meet a `prop_assume!` precondition; retried.
        Reject(Reason),
        /// The case failed an assertion.
        Fail(Reason),
    }

    impl TestCaseError {
        /// Builds a rejection (from `prop_assume!`).
        pub fn reject(r: impl Into<Reason>) -> Self {
            TestCaseError::Reject(r.into())
        }
        /// Builds a failure (from `prop_assert*!`).
        pub fn fail(r: impl Into<Reason>) -> Self {
            TestCaseError::Fail(r.into())
        }
    }

    /// Runner configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator RNG (splitmix64-seeded xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates an RNG from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `0..bound` (`bound > 0`), unbiased.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = bound.wrapping_neg() % bound;
            loop {
                let m = (self.next_u64() as u128).wrapping_mul(bound as u128);
                if (m as u64) >= zone {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    fn name_hash(name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate per-test streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `case` until `config.cases` cases are accepted; panics on the
    /// first failure, reporting the per-case seed for replay.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = name_hash(name);
        let mut accepted: u32 = 0;
        let mut rejected: u64 = 0;
        let mut attempt: u64 = 0;
        let max_rejects = 256 * config.cases as u64 + 4096;
        while accepted < config.cases {
            let seed = base ^ (attempt.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest `{name}`: too many rejected cases \
                             ({rejected} rejects for {accepted} accepted)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed after {accepted} passing case(s) \
                         (case seed {seed:#018x}): {msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                f: Rc::new(f),
            }
        }

        /// Type-erases this strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds recursive values: `f` receives a strategy for the inner
        /// (smaller) values and returns the strategy for one more level.
        /// `depth` bounds recursion; the size hints are accepted for
        /// upstream compatibility but not interpreted.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                // Mix leaves back in at every level so sizes vary.
                let inner = Union::weighted(vec![(1, base.clone()), (2, strat.clone())]);
                strat = f(inner.boxed()).boxed();
            }
            strat
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: Rc<F>,
    }

    impl<S: Clone, F> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                source: self.source.clone(),
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (the `prop_oneof!` macro builds these).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Uniform choice over `arms`.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Weighted choice over `arms`; weights must not all be zero.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof!: no arms");
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: zero total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "strategy: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod string {
    //! `&str` regex-pattern strategies (tiny subset: literals, one-level
    //! character classes, and `{m,n}` / `{m}` / `*` / `+` / `?` quantifiers).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
    }

    #[derive(Clone, Debug)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().unwrap();
                                let hi = chars.next().unwrap();
                                ranges.push((lo, hi));
                            }
                            _ => {
                                if let Some(p) = prev.replace(c) {
                                    ranges.push((p, p));
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        ranges.push((p, p));
                    }
                    assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(ranges)
                }
                '\\' => Atom::Lit(chars.next().expect("dangling escape")),
                _ => Atom::Lit(c),
            };
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 4)
                }
                Some('+') => {
                    chars.next();
                    (1, 4)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repeat"),
                            hi.trim().parse().expect("bad repeat"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repeat");
                            (n, n)
                        }
                    };
                    (lo, hi)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse(self) {
                let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Lit(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                            let span = (hi as u32).saturating_sub(lo as u32);
                            let code = lo as u32 + rng.below(span as u64 + 1) as u32;
                            out.push(char::from_u32(code).unwrap_or(lo));
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections (inclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Generates `Vec`s of values from `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`Index`).

    /// A stable random index, scaled into a concrete `0..len` on demand.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Projects this index into `0..len`; panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index: empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy for `A` (`any::<u64>()`, ...).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Canonical full-range strategy for primitives and [`crate::sample::Index`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyOf<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_uint {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for AnyOf<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
            impl Arbitrary for $ty {
                type Strategy = AnyOf<$ty>;
                fn arbitrary() -> Self::Strategy {
                    AnyOf(core::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyOf<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyOf<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyOf(core::marker::PhantomData)
        }
    }

    impl Strategy for AnyOf<crate::sample::Index> {
        type Value = crate::sample::Index;
        fn generate(&self, rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64())
        }
    }

    impl Arbitrary for crate::sample::Index {
        type Strategy = AnyOf<crate::sample::Index>;
        fn arbitrary() -> Self::Strategy {
            AnyOf(core::marker::PhantomData)
        }
    }
}

pub mod prelude {
    //! Everything a test module needs: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Rejects the current case unless `cond` holds (the runner retries).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller and passed
/// through) that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategies = ($($strategy,)+);
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, rng);
                    #[allow(unused_mut)]
                    let mut case = move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn strings_match_pattern(s in "[a-z]{1,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 3, "bad len: {}", s.len());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn recursion_is_bounded(t in arb_tree(), pick in any::<prop::sample::Index>()) {
            prop_assert!(depth(&t) <= 3);
            prop_assert!(pick.index(4) < 4);
        }

        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = prop_oneof![(0u32..10).prop_map(Tree::Leaf), Just(Tree::Leaf(99))];
        leaf.prop_recursive(3, 16, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }

    #[test]
    fn union_and_vec_compose() {
        let mut rng = crate::test_runner::TestRng::from_seed(5);
        let strat = prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 2..4);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
