//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the tiny slice of `parking_lot` it actually uses: [`Mutex`] and [`RwLock`]
//! with the panic-free (non-poisoning) `lock()`/`read()`/`write()` API.
//! Backed by `std::sync` primitives; a poisoned std lock is transparently
//! recovered, which matches `parking_lot` semantics (no poisoning).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot` API (no poisoning).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with the `parking_lot` API (no poisoning).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
