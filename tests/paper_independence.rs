//! E6 (DESIGN.md): Section 5 — Examples 4–6 and the independence criterion
//! on the paper's running scenario.

use regtree::prelude::*;
use regtree_core::in_language_naive;
use regtree_gen as gen;

/// Example 4: the class U on Figure 1 selects exactly one node to update.
#[test]
fn e6_example4_class_u_selection() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let class = gen::update_class_u(&a);
    let nodes = class.selected_nodes(&doc);
    assert_eq!(nodes.len(), 1, "only one mapping of U on D (Example 4)");
    assert_eq!(doc.label_name(nodes[0]).as_ref(), "level");
    // It is candidate 78's level.
    let cand = doc.parent(nodes[0]).unwrap();
    let idn = doc.children(cand)[0];
    assert_eq!(doc.value(idn), Some("78"));
}

/// Example 5: q1 has an impact on fd3.
#[test]
fn e6_example5_q1_impacts_fd3() {
    let a = gen::exam_alphabet();
    let fd3 = gen::fd3(&a);
    // Construct the document from the example: two candidates with the same
    // marks and the same level, only the first still has exams to pass.
    let doc = parse_document(
        &a,
        "<session>\
         <candidate IDN=\"1\">\
           <exam date=\"a\"><discipline>m</discipline><mark>8</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>8</mark><rank>2</rank></exam>\
           <level>D</level><toBePassed><discipline>m</discipline></toBePassed></candidate>\
         <candidate IDN=\"2\">\
           <exam date=\"a\"><discipline>m</discipline><mark>8</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>8</mark><rank>2</rank></exam>\
           <level>D</level><firstJob-Year>2010</firstJob-Year></candidate>\
         </session>",
    )
    .unwrap();
    gen::exam_schema(&a).validate(&doc).unwrap();
    assert!(satisfies(&fd3, &doc), "D satisfies fd3");
    let after = gen::update_q1(&a).apply_cloned(&doc).unwrap();
    assert!(
        !satisfies(&fd3, &after),
        "q1 decreases only candidate 1's level — fd3 violated in q1(D)"
    );
    // Consequently the criterion must NOT declare (fd3, U) independent.
    let analyzer = Analyzer::builder().schema(gen::exam_schema(&a)).build();
    let analysis = analyzer.independence(&fd3, &gen::update_class_u(&a));
    assert!(!analysis.verdict.is_independent());
}

/// Example 6: with the schema (toBePassed XOR firstJob-Year), fd5 is
/// independent of U; without the schema the criterion cannot conclude.
#[test]
fn e6_example6_schema_enables_independence() {
    let a = gen::exam_alphabet();
    let fd5 = gen::fd5(&a);
    let class = gen::update_class_u(&a);
    let schema = gen::exam_schema(&a);

    let with = Analyzer::builder()
        .schema(schema)
        .build()
        .independence(&fd5, &class);
    assert!(
        with.verdict.is_independent(),
        "updates of U only touch candidates with toBePassed, which fd5 never relates"
    );

    let without = Analyzer::builder().build().independence(&fd5, &class);
    match &without.verdict {
        Verdict::Unknown { witness, .. } => {
            // The witness document must genuinely be in the language L.
            let w = witness.as_ref().expect("witness extracted");
            assert!(in_language_naive(&fd5, &class, w), "witness ∉ L");
        }
        v => panic!("expected Unknown without schema, got {v:?}"),
    }
}

/// Semantic confirmation of Example 6: any label-preserving update of U on
/// any schema-valid document preserves fd5.
#[test]
fn e6_example6_semantic_spotcheck() {
    use rand::SeedableRng;
    let a = gen::exam_alphabet();
    let fd5 = gen::fd5(&a);
    let schema = gen::exam_schema(&a);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let ops = [
        UpdateOp::SetText("Z".into()),
        UpdateOp::AppendChild(TreeSpec::elem_named(&a, "comment", vec![])),
        UpdateOp::Delete,
    ];
    for i in 0..20 {
        let doc = gen::generate_session(&a, 8, 3, &mut rng);
        assert!(schema.validate(&doc).is_ok());
        assert!(satisfies(&fd5, &doc));
        let update = Update::new(gen::update_class_u(&a), ops[i % ops.len()].clone());
        let after = update.apply_cloned(&doc).unwrap();
        assert!(
            satisfies(&fd5, &after),
            "IC promised independence; round {i} broke it"
        );
    }
}

/// The IC automaton sizes scale with the inputs as Proposition 3 states.
#[test]
fn e6_proposition3_size_bound_sanity() {
    let a = gen::exam_alphabet();
    let small_fd = FdBuilder::new(a.clone())
        .context("session")
        .target("candidate/level")
        .build()
        .unwrap();
    let big_fd = gen::fd3(&a);
    let class = gen::update_class_u(&a);
    let small = regtree_core::build_ic_automaton(&small_fd, &class);
    let big = regtree_core::build_ic_automaton(&big_fd, &class);
    assert!(big.num_states() > small.num_states());
    // The state count is exactly (fd states) × (u states) × 2.
    let pa_fd = compile_pattern(big_fd.pattern(), true);
    let pa_u = compile_pattern(class.pattern(), false);
    assert_eq!(
        big.num_states(),
        pa_fd.automaton.num_states() * pa_u.automaton.num_states() * 2
    );
}

/// The criterion is sound but not complete: it may say Unknown for pairs
/// with no real impact (the paper's stated trade-off vs [14]).
#[test]
fn e6_criterion_is_conservative() {
    let a = gen::exam_alphabet();
    // FD whose target is the level; updates rewrite levels — every update
    // *site* is in the FD region, so IC says Unknown…
    let fd = FdBuilder::new(a.clone())
        .context("session")
        .condition("candidate/@IDN")
        .target("candidate/level")
        .build()
        .unwrap();
    let class = UpdateClass::new(parse_corexpath(&a, "/session/candidate/level").unwrap()).unwrap();
    let analysis = Analyzer::builder().build().independence(&fd, &class);
    assert!(!analysis.verdict.is_independent());
    // …even though an update writing the SAME text everywhere can never
    // violate this FD (IDs are unique per candidate). The criterion cannot
    // see the concrete update function `u` — by design.
}
