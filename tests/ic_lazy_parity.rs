//! Lazy/eager parity of the independence criterion.
//!
//! The lazy on-the-fly engine (`Analyzer::independence`, backed by
//! `crates/core/src/lazy_ic.rs`) and the eager pipeline
//! (`check_independence_eager`: full FD×U×bit product, eager schema
//! intersection, worklist emptiness) decide the same language emptiness
//! question. This suite drives both over random FD × update-class ×
//! optional-schema triples and asserts:
//!
//! 1. identical verdicts — for an `Analyzer` with unlimited limits (the
//!    governed engine must be invisible when no budget is set), and
//! 2. every non-`Independent` verdict's witness document is accepted by the
//!    *eager* product automaton (i.e. the lazy engine's reconstructed firing
//!    tree denotes a genuine member of the IC language, schema included).

use std::sync::Arc;

use proptest::prelude::*;
use regtree_alphabet::Alphabet;
use regtree_core::{
    build_ic_automaton, check_independence_eager, Analyzer, Fd, NullTracer, UpdateClass, Verdict,
};
use regtree_hedge::{intersect, Schema};
use regtree_pattern::{RegularTreePattern, Template};
use regtree_xml::to_xml;

const EDGES: [&str; 7] = ["a", "b", "c", "a/b", "(a|b)", "_", "b/c"];

fn alpha() -> Alphabet {
    Alphabet::with_labels(["a", "b", "c"])
}

/// A random FD over a small template: a context edge, 1–2 condition
/// branches, and a target branch (mirrors the E8 battery's shape).
fn arb_fd() -> impl Strategy<Value = Fd> {
    (
        0..EDGES.len(),
        prop::collection::vec(0..EDGES.len(), 1..=2),
        0..EDGES.len(),
    )
        .prop_map(|(ctx_edge, conditions, target)| {
            let a = alpha();
            let mut t = Template::new(a);
            let ctx = t.add_child_str(t.root(), EDGES[ctx_edge]).unwrap();
            let mut selected = Vec::new();
            for e in conditions {
                selected.push(t.add_child_str(ctx, EDGES[e]).unwrap());
            }
            selected.push(t.add_child_str(ctx, EDGES[target]).unwrap());
            let pattern = RegularTreePattern::new(t, selected).unwrap();
            Fd::with_default_equality(pattern, ctx).unwrap()
        })
}

/// A random monadic update class: a 1–2 hop chain to the updated leaf,
/// optionally with a structural sibling branch.
fn arb_class() -> impl Strategy<Value = UpdateClass> {
    let maybe_sibling = prop_oneof![Just(Option::<usize>::None), (0..EDGES.len()).prop_map(Some),];
    (prop::collection::vec(0..EDGES.len(), 1..=2), maybe_sibling).prop_map(|(hops, sibling)| {
        let a = alpha();
        let mut t = Template::new(a);
        let mut cur = t.root();
        for e in hops {
            cur = t.add_child_str(cur, EDGES[e]).unwrap();
        }
        if let Some(e) = sibling {
            let parent = t.parent(cur).unwrap();
            let _ = t.add_child_str(parent, EDGES[e]);
        }
        UpdateClass::new(RegularTreePattern::monadic(t, cur).unwrap()).unwrap()
    })
}

/// A random small schema over {a, b, c} (same shape pool as the hedge
/// crate's proptests), or `None` for the schema-free criterion.
fn arb_schema_opt() -> impl Strategy<Value = Option<Schema>> {
    let model = prop_oneof![
        Just("EMPTY".to_string()),
        Just("a*".to_string()),
        Just("b?".to_string()),
        Just("(a|b)*".to_string()),
        Just("a b".to_string()),
        Just("c+".to_string()),
        Just("#text".to_string()),
    ];
    let schema = (
        model.clone(),
        model.clone(),
        model,
        prop_oneof![Just("a"), Just("b"), Just("a*"), Just("(a|b)+")],
    )
        .prop_map(|(ma, mb, mc, root)| {
            let a = alpha();
            let text = format!("root: {root}\na: {ma}\nb: {mb}\nc: {mc}\n");
            Schema::parse(&a, &text).expect("generated schema parses")
        });
    prop_oneof![Just(Option::<Schema>::None), schema.prop_map(Some)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn lazy_and_eager_agree(fd in arb_fd(), class in arb_class(), schema in arb_schema_opt()) {
        // An Analyzer with no limits set: the governed lazy engine must be
        // verdict-identical to the eager pipeline on every instance.
        let mut builder = Analyzer::builder();
        if let Some(s) = &schema {
            builder = builder.schema(s.clone());
        }
        let lazy = builder.build().independence(&fd, &class);
        let eager = check_independence_eager(&fd, &class, schema.as_ref());
        prop_assert_eq!(
            lazy.verdict.is_independent(),
            eager.verdict.is_independent(),
            "analyzer (lazy) and eager disagree (schema: {})",
            schema.is_some()
        );
        // An unlimited run never reports an exhausted resource.
        prop_assert!(lazy.verdict.exhausted().is_none());
        // Tracing parity: attaching a NullTracer must change nothing — the
        // identical verdict and the identical work counters (wall times are
        // excluded: they vary run to run, the counters must not).
        let mut traced_builder = Analyzer::builder().tracer(Arc::new(NullTracer));
        if let Some(s) = &schema {
            traced_builder = traced_builder.schema(s.clone());
        }
        let traced = traced_builder.build().independence(&fd, &class);
        prop_assert_eq!(
            traced.verdict.is_independent(),
            lazy.verdict.is_independent(),
            "NullTracer changed the verdict"
        );
        prop_assert_eq!(traced.explored_states, lazy.explored_states);
        prop_assert_eq!(traced.metrics.states_interned, lazy.metrics.states_interned);
        prop_assert_eq!(traced.metrics.transitions_fired, lazy.metrics.transitions_fired);
        prop_assert_eq!(
            traced.metrics.guard_intersections,
            lazy.metrics.guard_intersections
        );
        prop_assert_eq!(traced.metrics.dfa_steps, lazy.metrics.dfa_steps);
        prop_assert_eq!(traced.metrics.frontier_pushes, lazy.metrics.frontier_pushes);
        prop_assert_eq!(traced.metrics.memo_entries, lazy.metrics.memo_entries);
        prop_assert_eq!(traced.metrics.memo_hits, lazy.metrics.memo_hits);
        // The never-materialized product is at least as large as what the
        // lazy engine actually interned.
        prop_assert!(lazy.explored_states <= lazy.total_states);
        if let Verdict::Unknown { witness: Some(w), .. } = &lazy.verdict {
            // The lazy witness must be a genuine member of the IC language —
            // checked against the eager product automaton, schema included.
            let mut product = build_ic_automaton(&fd, &class);
            if let Some(s) = &schema {
                product = intersect(&product, &s.compile());
            }
            prop_assert!(
                product.accepts(w),
                "lazy witness rejected by the eager product automaton:\n{}",
                to_xml(w)
            );
        }
    }
}
