//! E4–E5 (DESIGN.md): Figures 4–5 — the functional dependencies of the
//! paper, the [8] path formalism (expr1/expr2) and the Example 3
//! inexpressibility results.

use regtree::prelude::*;
use regtree_core::Inexpressibility;
use regtree_gen as gen;

#[test]
fn e4_fds_hold_on_figure1() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    for (name, fd) in [
        ("fd1", gen::fd1(&a)),
        ("fd2", gen::fd2(&a)),
        ("fd3", gen::fd3(&a)),
        ("fd4", gen::fd4(&a)),
        ("fd5", gen::fd5(&a)),
    ] {
        assert!(satisfies(&fd, &doc), "{name} holds on Figure 1");
    }
}

#[test]
fn e4_fd1_example1_semantics() {
    // fd1: two exams of one session with same discipline and mark share the
    // same rank — including across candidates.
    let a = gen::exam_alphabet();
    let fd1 = gen::fd1(&a);
    let violating = parse_document(
        &a,
        "<session>\
         <candidate IDN=\"1\"><exam date=\"a\"><discipline>math</discipline><mark>15</mark><rank>2</rank></exam>\
         <level>B</level><firstJob-Year>2010</firstJob-Year></candidate>\
         <candidate IDN=\"2\"><exam date=\"b\"><discipline>math</discipline><mark>15</mark><rank>7</rank></exam>\
         <level>B</level><firstJob-Year>2011</firstJob-Year></candidate>\
         </session>",
    )
    .unwrap();
    let v = check_fd(&fd1, &violating).unwrap_err();
    assert_ne!(v.target_a, v.target_b);
    // Same data split across two *sessions* is fine (context isolation).
    let two_sessions = parse_document(
        &a,
        "<session>\
         <candidate IDN=\"1\"><exam date=\"a\"><discipline>math</discipline><mark>15</mark><rank>2</rank></exam>\
         <level>B</level><firstJob-Year>2010</firstJob-Year></candidate>\
         </session>\
         <session>\
         <candidate IDN=\"2\"><exam date=\"b\"><discipline>math</discipline><mark>15</mark><rank>7</rank></exam>\
         <level>B</level><firstJob-Year>2011</firstJob-Year></candidate>\
         </session>",
    )
    .unwrap();
    assert!(satisfies(&fd1, &two_sessions));
}

#[test]
fn e4_fd2_example2_semantics() {
    // fd2: a candidate cannot take, at the same date, two different exams of
    // the same discipline (node-equality target).
    let a = gen::exam_alphabet();
    let fd2 = gen::fd2(&a);
    let bad = parse_document(
        &a,
        "<session><candidate IDN=\"1\">\
         <exam date=\"d1\"><discipline>math</discipline><mark>1</mark><rank>1</rank></exam>\
         <exam date=\"d1\"><discipline>math</discipline><mark>2</mark><rank>2</rank></exam>\
         <level>E</level><toBePassed><discipline>math</discipline></toBePassed>\
         </candidate></session>",
    )
    .unwrap();
    assert!(!satisfies(&fd2, &bad));
    // Different dates: fine.
    let ok = parse_document(
        &a,
        "<session><candidate IDN=\"1\">\
         <exam date=\"d1\"><discipline>math</discipline><mark>1</mark><rank>1</rank></exam>\
         <exam date=\"d2\"><discipline>math</discipline><mark>2</mark><rank>2</rank></exam>\
         <level>E</level><toBePassed><discipline>math</discipline></toBePassed>\
         </candidate></session>",
    )
    .unwrap();
    assert!(satisfies(&fd2, &ok));
}

#[test]
fn e4_expr1_expr2_translate_to_figure4_patterns() {
    let a = gen::exam_alphabet();
    // expr1 → FD1: factorized trie with a shared candidate/exam node.
    let fd1 = PathFd::parse(
        &a,
        "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank",
    )
    .unwrap()
    .to_fd(&a)
    .unwrap();
    assert_eq!(fd1.template().len(), 6, "root+context+shared+3 leaves");
    assert_eq!(fd1.conditions().len(), 2);
    // expr2 → FD2: the target exam node is internal, with [N] equality.
    let fd2 = PathFd::parse(
        &a,
        "/session/candidate : exam/@date, exam/discipline -> exam[N]",
    )
    .unwrap()
    .to_fd(&a)
    .unwrap();
    assert!(!fd2.template().is_leaf(fd2.target()));
    assert_eq!(fd2.target_equality(), EqualityType::Node);

    // The translations agree with the generator's hand-built fd1/fd2 on a
    // battery of documents.
    let docs = [
        gen::figure1_document(&a),
        parse_document(&a, "<session/>").unwrap(),
    ];
    for doc in &docs {
        assert_eq!(
            satisfies(&fd1, doc),
            satisfies(&gen::fd1(&a), doc),
            "expr1 ≡ fd1"
        );
        assert_eq!(
            satisfies(&fd2, doc),
            satisfies(&gen::fd2(&a), doc),
            "expr2 ≡ fd2"
        );
    }
}

#[test]
fn e5_fd3_fd4_outside_the_path_formalism() {
    let a = gen::exam_alphabet();
    assert!(matches!(
        expressible_in_path_formalism(&gen::fd3(&a)),
        Err(Inexpressibility::SiblingCommonPrefix(..))
    ));
    assert!(matches!(
        expressible_in_path_formalism(&gen::fd4(&a)),
        Err(Inexpressibility::UnselectedLeaf(_))
    ));
    // While fd1/fd2 (built from paths) stay inside.
    assert!(expressible_in_path_formalism(&gen::fd1(&a)).is_ok());
    assert!(expressible_in_path_formalism(&gen::fd2(&a)).is_ok());
}

#[test]
fn e5_fd3_semantics() {
    let a = gen::exam_alphabet();
    let fd3 = gen::fd3(&a);
    // Equal mark pairs, different level → violation.
    let bad = parse_document(
        &a,
        "<session>\
         <candidate IDN=\"1\">\
           <exam date=\"a\"><discipline>m</discipline><mark>10</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>12</mark><rank>1</rank></exam>\
           <level>C</level><firstJob-Year>2010</firstJob-Year></candidate>\
         <candidate IDN=\"2\">\
           <exam date=\"a\"><discipline>m</discipline><mark>10</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>12</mark><rank>1</rank></exam>\
           <level>B</level><firstJob-Year>2011</firstJob-Year></candidate>\
         </session>",
    )
    .unwrap();
    assert!(!satisfies(&fd3, &bad));
}

#[test]
fn e5_fd4_restricts_to_tobepassed_candidates() {
    let a = gen::exam_alphabet();
    let fd4 = gen::fd4(&a);
    // Same marks, different levels — but only ONE candidate has toBePassed,
    // so fd4 (unlike fd3) is not violated.
    let doc = parse_document(
        &a,
        "<session>\
         <candidate IDN=\"1\">\
           <exam date=\"a\"><discipline>m</discipline><mark>8</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>8</mark><rank>1</rank></exam>\
           <level>C</level><toBePassed><discipline>m</discipline></toBePassed></candidate>\
         <candidate IDN=\"2\">\
           <exam date=\"a\"><discipline>m</discipline><mark>8</mark><rank>1</rank></exam>\
           <exam date=\"b\"><discipline>p</discipline><mark>8</mark><rank>1</rank></exam>\
           <level>B</level><firstJob-Year>2010</firstJob-Year></candidate>\
         </session>",
    )
    .unwrap();
    assert!(!satisfies(&gen::fd3(&a), &doc), "fd3 sees the violation");
    assert!(
        satisfies(&fd4, &doc),
        "fd4 only relates candidates that still have exams to pass"
    );
}
