//! E7 (DESIGN.md): Proposition 1 — the reduction from regular-expression
//! inclusion to update–FD (non-)independence, exercised on a battery of
//! regex pairs including randomly generated ones.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use regtree::prelude::*;
use regtree_core::{build_reduction, gadget_alphabet};
use regtree_gen::random_regex;

fn check_pair(a: &Alphabet, eta: &Regex, etap: &Regex, rng: &mut SmallRng) {
    match build_reduction(a, eta, etap, rng) {
        None => {
            // η ⊆ η' — verified independently through the DFA engine.
            let uni: Vec<u32> = ["A", "B", "C", "D", "F", "G"]
                .iter()
                .map(|l| a.intern(l).0)
                .collect();
            assert!(
                regtree::automata::inclusion::regex_included(eta, etap, &uni).is_ok(),
                "build_reduction said included, inclusion checker disagrees"
            );
        }
        Some(inst) => {
            // The non-inclusion witness is genuine…
            assert!(eta.matches(&inst.witness_word));
            assert!(!etap.matches(&inst.witness_word));
            // …the Figure-8 document satisfies fd and is impacted by q ∈ U.
            assert!(satisfies(&inst.fd, &inst.doc), "pre-update satisfaction");
            let selected = inst.class.selected_nodes(&inst.doc);
            assert!(!selected.is_empty(), "U must select the update site");
            let after = inst.update.apply_cloned(&inst.doc).unwrap();
            assert!(!satisfies(&inst.fd, &after), "post-update violation");
        }
    }
}

#[test]
fn e7_fixed_pairs() {
    let a = gadget_alphabet();
    let mut rng = SmallRng::seed_from_u64(7);
    let pairs = [
        ("D", "D"),
        ("D", "B"),
        ("D+", "D/D+"),
        ("D/D+", "D+"),
        ("(B|D)+", "B+|D+"),
        ("B+|D+", "(B|D)+"),
        ("(B/D)*/B", "B/(D/B)*"),
        ("B/(D/B)*", "(B/D)*/B"),
        ("B?/D", "B/D|D"),
        ("D/B*", "D/B/B*"),
    ];
    for (e, ep) in pairs {
        let eta = parse_regex(&a, e).unwrap();
        let etap = parse_regex(&a, ep).unwrap();
        check_pair(&a, &eta, &etap, &mut rng);
    }
}

#[test]
fn e7_random_pairs() {
    let a = gadget_alphabet();
    let labels: Vec<_> = ["B", "D"].iter().map(|l| a.intern(l)).collect();
    let mut rng = SmallRng::seed_from_u64(2010);
    let mut impacts = 0;
    let mut inclusions = 0;
    for _ in 0..60 {
        let eta = regtree_gen::random_proper_regex(&labels, 4, &mut rng);
        let etap = regtree_gen::random_proper_regex(&labels, 4, &mut rng);
        match build_reduction(&a, &eta, &etap, &mut rng) {
            Some(inst) => {
                impacts += 1;
                assert!(satisfies(&inst.fd, &inst.doc));
                let after = inst.update.apply_cloned(&inst.doc).unwrap();
                assert!(!satisfies(&inst.fd, &after));
            }
            None => inclusions += 1,
        }
    }
    assert!(impacts > 0, "random pairs should include non-inclusions");
    assert!(inclusions > 0, "random pairs should include inclusions");
}

#[test]
fn e7_reduction_patterns_grow_linearly_in_regex_size() {
    // |FD| and |U| are linear in |η| + |η'| — the reduction is polynomial,
    // it is the *decision problem* that is hard.
    let a = gadget_alphabet();
    let labels: Vec<_> = ["B", "D"].iter().map(|l| a.intern(l)).collect();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut last = 0;
    for size in [2usize, 8, 32] {
        let eta = random_regex(&labels, size, &mut rng);
        let etap = random_regex(&labels, size, &mut rng);
        let (eta, etap) = (
            regtree::automata::Regex::seq([eta, regtree::automata::Regex::Atom(labels[0])]),
            regtree::automata::Regex::seq([etap, regtree::automata::Regex::Atom(labels[0])]),
        );
        let (fd, class) = regtree_core::build_patterns(&a, &eta, &etap);
        let total = fd.size() + class.size();
        assert!(total > last);
        last = total;
    }
}
