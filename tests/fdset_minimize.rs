//! Soundness of FD-set minimization and of subsumption-aware matrix
//! pruning, driven by random instances.
//!
//! 1. **Minimize soundness** (≥300 cases): for random path-FD sets and
//!    random documents, whenever a document satisfies every *kept* FD of
//!    [`FdSet::minimize`], it satisfies every *dropped* FD too — i.e. the
//!    implication closure never drops an FD the core does not entail. The
//!    documents are built independently of the FDs (shared-prefix tries
//!    over the same label pool), so premise-vacuous cases — the classic
//!    trap for naive transitivity — arise constantly.
//! 2. **Pruned/unpruned matrix parity**: `Analyzer::matrix_pruned` agrees
//!    with `Analyzer::matrix` on every cell the engine computed, and every
//!    *reused* verdict matches what the unpruned engine computed for that
//!    cell (the containment direction is not just sound but empirically
//!    exact under unlimited budgets). Implied rows are excluded from
//!    recheck reports.

use proptest::prelude::*;
use regtree_alphabet::Alphabet;
use regtree_core::{
    satisfies, update_class_from_edges, Analyzer, CellProvenance, Fd, FdSet, PathFd, RunLimits,
    UpdateClass,
};
use regtree_xml::{parse_document, Document};

const LABELS: [&str; 3] = ["a", "b", "c"];

fn alpha() -> Alphabet {
    Alphabet::with_labels(["r", "a", "b", "c"])
}

/// A path of 1–2 labels below the context, rendered as `a/b`.
fn arb_path() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..LABELS.len(), 1..=2)
}

fn path_str(p: &[usize], node_eq: bool) -> String {
    let mut s = p.iter().map(|&i| LABELS[i]).collect::<Vec<_>>().join("/");
    if node_eq {
        s.push_str("[N]");
    }
    s
}

/// `[N]` on roughly one path in five.
fn arb_node_eq() -> impl Strategy<Value = bool> {
    (0..5u8).prop_map(|v| v == 0)
}

/// A random FD in the path formalism: context `/r`, 1–2 conditions and a
/// target drawn from a deliberately tiny path pool (so augmentation /
/// containment pairs are common), each with a ~20% chance of `[N]`.
fn arb_path_fd() -> impl Strategy<Value = Fd> {
    (
        prop::collection::vec((arb_path(), arb_node_eq()), 2..=3),
        arb_node_eq(),
    )
        .prop_map(|(mut entries, tn)| {
            let (mut target, _) = entries.pop().expect("at least two entries");
            // `to_fd` rejects duplicate paths: dedup conditions and grow the
            // target until distinct, so every draw yields a valid FD.
            let mut conds: Vec<(Vec<usize>, bool)> = Vec::new();
            for (p, n) in entries {
                if !conds.iter().any(|(q, _)| *q == p) {
                    conds.push((p, n));
                }
            }
            while conds.iter().any(|(q, _)| *q == target) {
                target.push(target.len() % LABELS.len());
            }
            let cond_strs: Vec<String> = conds.iter().map(|(p, n)| path_str(p, *n)).collect();
            let src = format!("/r : {} -> {}", cond_strs.join(", "), path_str(&target, tn));
            let a = alpha();
            PathFd::parse(&a, &src)
                .expect("generated path FD parses")
                .to_fd(&a)
                .expect("generated path FD factorizes")
        })
}

fn arb_fd_set() -> impl Strategy<Value = Vec<Fd>> {
    prop::collection::vec(arb_path_fd(), 3..=6)
}

/// Document recipe: each entry inserts a root-to-leaf path into a tree,
/// where each `bit` decides whether to share an existing equally-labeled
/// child or to fork a fresh sibling. Values come from a two-element pool so
/// both satisfaction and violation of value agreement are common.
type DocRecipe = Vec<(Vec<usize>, usize, Vec<bool>)>;

fn arb_doc_recipe() -> impl Strategy<Value = DocRecipe> {
    prop::collection::vec(
        (
            prop::collection::vec(0..LABELS.len(), 1..=3),
            0..2usize,
            prop::collection::vec(any::<bool>(), 3),
        ),
        1..8,
    )
}

struct TreeNode {
    label: String,
    value: Option<usize>,
    children: Vec<TreeNode>,
}

impl TreeNode {
    fn new(label: &str) -> TreeNode {
        TreeNode {
            label: label.to_string(),
            value: None,
            children: Vec::new(),
        }
    }

    fn insert(&mut self, path: &[usize], value: usize, bits: &[bool]) {
        let Some(&head) = path.first() else {
            self.value = Some(value);
            return;
        };
        let label = LABELS[head];
        let share = bits.first().copied().unwrap_or(true);
        let rest_bits = bits.get(1..).unwrap_or(&[]);
        if share {
            if let Some(child) = self.children.iter_mut().find(|c| c.label == label) {
                child.insert(&path[1..], value, rest_bits);
                return;
            }
        }
        self.children.push(TreeNode::new(label));
        let child = self.children.last_mut().expect("just pushed");
        child.insert(&path[1..], value, rest_bits);
    }

    fn to_xml(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.label);
        out.push('>');
        if self.children.is_empty() {
            if let Some(v) = self.value {
                out.push_str(&format!("v{v}"));
            }
        } else {
            for c in &self.children {
                c.to_xml(out);
            }
        }
        out.push_str("</");
        out.push_str(&self.label);
        out.push('>');
    }
}

fn build_doc(a: &Alphabet, recipe: &DocRecipe) -> Document {
    let mut root = TreeNode::new("r");
    for (path, value, bits) in recipe {
        root.insert(path, *value, bits);
    }
    let mut xml = String::new();
    root.to_xml(&mut xml);
    parse_document(a, &xml).expect("generated XML parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Every FD dropped by `minimize()` is satisfied by every document
    /// that satisfies the kept core.
    #[test]
    fn minimize_is_sound(
        fds in arb_fd_set(),
        recipes in prop::collection::vec(arb_doc_recipe(), 1..4),
    ) {
        let a = alpha();
        let mut set = FdSet::new();
        for (i, fd) in fds.iter().enumerate() {
            set.push(format!("fd{i}"), fd.clone());
        }
        let min = set.minimize(&RunLimits::UNLIMITED);
        prop_assert!(min.is_complete());
        prop_assert_eq!(min.kept.len() + min.dropped.len(), fds.len());
        for recipe in &recipes {
            let doc = build_doc(&a, recipe);
            if min.kept.iter().all(|&i| satisfies(&fds[i], &doc)) {
                for d in &min.dropped {
                    prop_assert!(
                        satisfies(&fds[d.index], &doc),
                        "dropped FD {} (implied by {:?}) violated by a \
                         document satisfying the kept core",
                        d.index,
                        d.by,
                    );
                }
            }
        }
        // Provenance refers to kept FDs only.
        for d in &min.dropped {
            for &j in &d.by {
                prop_assert!(min.kept.contains(&j));
            }
        }
    }
}

/// A random monadic update class reaching 1–3 hops below the root.
fn arb_class() -> impl Strategy<Value = UpdateClass> {
    prop::collection::vec(0..LABELS.len(), 1..=3).prop_map(|hops| {
        let a = alpha();
        let edge = format!(
            "r/{}",
            hops.iter()
                .map(|&i| LABELS[i])
                .collect::<Vec<_>>()
                .join("/")
        );
        update_class_from_edges(&a, &[edge.as_str()]).expect("valid edge path")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The pruned matrix agrees with the unpruned one: identical verdicts
    /// on every engine-computed cell, and every reused verdict equals the
    /// unpruned engine's verdict for that cell.
    #[test]
    fn pruned_matrix_matches_unpruned(
        fds in arb_fd_set(),
        classes in prop::collection::vec(arb_class(), 1..=3),
    ) {
        let named_fds: Vec<(String, &Fd)> = fds
            .iter()
            .enumerate()
            .map(|(i, fd)| (format!("fd{i}"), fd))
            .collect();
        let fd_refs: Vec<(&str, &Fd)> =
            named_fds.iter().map(|(n, fd)| (n.as_str(), *fd)).collect();
        let named_classes: Vec<(String, &UpdateClass)> = classes
            .iter()
            .enumerate()
            .map(|(j, c)| (format!("u{j}"), c))
            .collect();
        let class_refs: Vec<(&str, &UpdateClass)> = named_classes
            .iter()
            .map(|(n, c)| (n.as_str(), *c))
            .collect();

        let an = Analyzer::builder().build();
        let plain = an.matrix(&fd_refs, &class_refs);
        let pruned = an.matrix_pruned(&fd_refs, &class_refs);
        prop_assert_eq!(plain.cells.len(), pruned.cells.len());

        for (p, q) in plain.cells.iter().zip(&pruned.cells) {
            prop_assert_eq!((p.fd, p.class), (q.fd, q.class));
            match &q.provenance {
                CellProvenance::Computed | CellProvenance::ReusedFrom { .. } => {
                    prop_assert_eq!(
                        p.verdict.is_independent(),
                        q.verdict.is_independent(),
                        "cell ({}, {}) diverged ({:?})",
                        p.fd,
                        p.class,
                        q.provenance,
                    );
                }
                // Implied rows carry no verdict; they must not be listed
                // for recheck (their impliers are), but must not be
                // claimed independent either.
                CellProvenance::ImpliedRow { .. } => {
                    prop_assert!(!q.verdict.is_independent());
                    prop_assert!(!pruned
                        .fds_to_recheck(q.class)
                        .contains(&q.fd));
                }
                other => prop_assert!(false, "unexpected provenance {other:?}"),
            }
        }
    }
}
