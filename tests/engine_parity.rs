//! Differential tests between the two pattern-evaluation engines.
//!
//! The production engine steps cached edge DFAs and prunes with the
//! document label index; the reference engine threads NFA state sets with
//! no pruning. On every instance both must return *identical* mapping
//! lists (same mappings, same order), and the batch/parallel entry points
//! must agree with their sequential counterparts.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use regtree::prelude::*;
use regtree_gen as gen;
use regtree_pattern::{enumerate_mappings, enumerate_mappings_nfa, evaluate_many};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// DFA and NFA engines enumerate identical mapping sets on random
    /// templates × random schema-valid documents.
    #[test]
    fn dfa_and_nfa_engines_agree(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = gen::exam_alphabet();
        let schema = gen::exam_schema(&a);
        let doc = gen::random_document(&schema, rng.gen_range(1..5usize), &mut rng);
        let labels: Vec<Symbol> = a
            .symbols()
            .into_iter()
            .filter(|&s| s != Alphabet::ROOT)
            .collect();
        let pattern = gen::random_pattern(&a, &labels, rng.gen_range(1..4usize), &mut rng);
        let fast = enumerate_mappings(pattern.template(), &doc);
        let reference = enumerate_mappings_nfa(pattern.template(), &doc);
        prop_assert_eq!(fast, reference);
    }
}

#[test]
fn engines_agree_on_figure1_and_paper_patterns() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    // R4 (two exams in the same failed discipline) matches nothing on the
    // pristine Figure 1 document — the engines must agree on that too.
    let expected_counts = [4, 2, 4, 0];
    for (p, &count) in [
        gen::pattern_r1(&a),
        gen::pattern_r2(&a),
        gen::pattern_r3(&a),
        gen::pattern_r4(&a),
    ]
    .iter()
    .zip(&expected_counts)
    {
        let fast = enumerate_mappings(p.template(), &doc);
        let reference = enumerate_mappings_nfa(p.template(), &doc);
        assert_eq!(fast, reference);
        assert_eq!(fast.len(), count);
    }
}

#[test]
fn parallel_fd_check_agrees_with_sequential_on_figure1() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let fds = vec![
        gen::fd1(&a),
        gen::fd2(&a),
        gen::fd3(&a),
        gen::fd4(&a),
        gen::fd5(&a),
    ];
    let parallel = Analyzer::builder().build().check_fds(&fds, &doc);
    assert_eq!(parallel.outcomes.len(), fds.len());
    for (fd, par) in fds.iter().zip(&parallel.outcomes) {
        assert_eq!(par.is_satisfied(), check_fd(fd, &doc).is_ok());
        assert!(par.is_satisfied(), "Figure 1 satisfies fd1–fd5");
    }
}

#[test]
fn parallel_fd_check_agrees_on_schema_valid_sessions() {
    let a = gen::exam_alphabet();
    let schema = gen::exam_schema(&a);
    let fds = vec![gen::fd1(&a), gen::fd2(&a), gen::fd4(&a), gen::fd5(&a)];
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..5 {
        let doc = gen::generate_session(&a, 8, 3, &mut rng);
        schema.validate(&doc).expect("generator emits valid docs");
        let parallel = Analyzer::builder().build().check_fds(&fds, &doc);
        for (fd, par) in fds.iter().zip(&parallel.outcomes) {
            match (par.is_satisfied(), check_fd(fd, &doc)) {
                (true, Ok(())) => {}
                (false, Err(_)) => {}
                (p, s) => panic!("parallel satisfied={p:?} != sequential {s:?}"),
            }
        }
    }
}

#[test]
fn batch_evaluate_many_agrees_with_sequential() {
    let a = gen::exam_alphabet();
    let mut rng = SmallRng::seed_from_u64(7);
    let docs: Vec<Document> = (0..4)
        .map(|i| gen::generate_session(&a, 2 + i, 2, &mut rng))
        .collect();
    let patterns = vec![
        gen::pattern_r1(&a),
        gen::pattern_r2(&a),
        gen::pattern_r3(&a),
        gen::pattern_r4(&a),
    ];
    let batch = evaluate_many(&patterns, &docs);
    for (d, doc) in docs.iter().enumerate() {
        for (p, pat) in patterns.iter().enumerate() {
            assert_eq!(batch[d][p], pat.evaluate(doc), "doc {d} pattern {p}");
        }
    }
}

#[test]
fn revalidate_full_many_agrees_with_single() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let fds = vec![gen::fd1(&a), gen::fd2(&a), gen::fd3(&a)];
    let update = gen::update_q1(&a);
    let mut scratch = doc.clone();
    let many = revalidate_full_many(&fds, &update, &mut scratch).unwrap();
    // The journaled in-place application rolls back: the document is intact.
    assert_eq!(to_xml(&scratch), to_xml(&doc));
    for (fd, m) in fds.iter().zip(&many) {
        let single = revalidate_full(fd, &update, &doc).unwrap();
        assert_eq!(m.is_ok(), single.is_ok());
    }
}
