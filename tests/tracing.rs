//! Integration tests for the structured tracing layer.
//!
//! Three properties hold the subsystem together:
//!
//! 1. a [`ChromeTraceSink`] capture of a real analysis is valid JSON with
//!    every span's begin/end records present and properly nested per
//!    thread (a trace with dangling `B` records renders as garbage in
//!    `chrome://tracing`);
//! 2. a [`SummarySink`] capture agrees with the engine's own
//!    [`RunMetrics`] counters — each counter bump emits exactly one trace
//!    event, so the two tallies must be byte-identical;
//! 3. tracing is observation only: the traced run's verdict and counters
//!    match an untraced run (the per-case proptest lives in
//!    `ic_lazy_parity.rs`; here the paper's running example is checked
//!    end to end, matrix and FD batch included).

use std::sync::Arc;

use regtree_core::{
    update_class_from_edges, validate_json, Analyzer, ChromeTraceSink, EventKind, RunMetrics,
    SpanKind, SummarySink, TraceHandle, Update, UpdateOp,
};
use regtree_xml::VersionedDocument;

/// Per-tid stack simulation over the JSONL rendering: every `E` must close
/// the innermost open `B` on its thread, and nothing may stay open.
fn assert_balanced(jsonl: &str) {
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, u64> = HashMap::new();
    for line in jsonl.lines() {
        let tid = field_u64(line, "\"tid\":");
        if line.contains("\"ph\":\"B\"") {
            *stacks.entry(tid).or_insert(0) += 1;
        } else if line.contains("\"ph\":\"E\"") {
            let depth = stacks
                .get_mut(&tid)
                .unwrap_or_else(|| panic!("E with no open span on tid {tid}: {line}"));
            assert!(*depth > 0, "E with no open span on tid {tid}: {line}");
            *depth -= 1;
        } else {
            assert!(line.contains("\"ph\":\"i\""), "unexpected record: {line}");
        }
    }
    for (tid, depth) in stacks {
        assert_eq!(depth, 0, "tid {tid} ended with {depth} spans still open");
    }
}

fn field_u64(line: &str, key: &str) -> u64 {
    let rest = &line[line.find(key).expect("key present") + key.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

/// Runs the paper's running example (FD1/FD3/FD5 of the exam document
/// against update class U, schema included) through an analyzer wired to
/// `tracer`, exercising the batch analysis entry points plus the
/// incremental pipeline (validated streaming ingest, one delta recheck).
fn drive_example(analyzer: &Analyzer, trace: &TraceHandle) -> (bool, RunMetrics) {
    let alphabet = regtree_gen::exam_alphabet();
    let doc = regtree_gen::figure1_document(&alphabet);
    let fd1 = regtree_gen::fd1(&alphabet);
    let fd3 = regtree_gen::fd3(&alphabet);
    let fd5 = regtree_gen::fd5(&alphabet);
    let class = regtree_gen::update_class_u(&alphabet);

    let mut totals = RunMetrics::default();
    let analysis = analyzer.independence(&fd5, &class);
    let verdict = analysis.verdict.is_independent();
    totals.merge(&analysis.metrics);

    let matrix = analyzer.matrix(&[("fd3", &fd3), ("fd5", &fd5)], &[("U", &class)]);
    for cell in &matrix.cells {
        totals.merge(&cell.metrics);
    }

    let batch = analyzer.check_fds(std::slice::from_ref(&fd1), &doc);
    totals.merge(&batch.metrics);

    // Incremental pipeline: fused ingest, then one level edit rechecked
    // through the retained checker (fires ingest/delta_apply/scope_classify).
    let (streamed, _) = regtree_hedge::stream_validated_traced(
        regtree_gen::exam_schema(&alphabet).compiled(),
        &alphabet,
        &regtree_xml::to_xml(&doc),
        regtree_xml::ParseOptions::default(),
        trace,
    )
    .expect("figure 1 is schema-valid");
    let mut vdoc = VersionedDocument::new(streamed);
    let mut checker = analyzer.incremental_checker(vec![fd1], &vdoc);
    totals.merge(checker.initial_metrics());
    let level =
        update_class_from_edges(&alphabet, &["session/candidate/level"]).expect("level edit class");
    let report = checker
        .apply_and_recheck(
            &mut vdoc,
            &Update::new(level, UpdateOp::SetText("C".into())),
        )
        .expect("level edit applies");
    totals.merge(&report.metrics);

    (verdict, totals)
}

fn traced_analyzer(tracer: Arc<dyn regtree_core::Tracer>) -> Analyzer {
    let alphabet = regtree_gen::exam_alphabet();
    Analyzer::builder()
        .schema(regtree_gen::exam_schema(&alphabet))
        .tracer(tracer)
        .build()
}

fn plain_analyzer() -> Analyzer {
    let alphabet = regtree_gen::exam_alphabet();
    Analyzer::builder()
        .schema(regtree_gen::exam_schema(&alphabet))
        .build()
}

#[test]
fn chrome_trace_is_valid_json_with_balanced_spans() {
    let sink = Arc::new(ChromeTraceSink::new());
    let analyzer = traced_analyzer(sink.clone());
    let (independent, _) = drive_example(&analyzer, &TraceHandle::new(sink.clone()));
    assert!(
        independent,
        "fd5 vs U under the schema is the paper's yes-case"
    );

    let chrome = sink.to_chrome_json();
    validate_json(&chrome).unwrap_or_else(|e| panic!("chrome trace is not JSON: {e}"));
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"displayTimeUnit\":\"ms\""));

    // Same capture, line-oriented: simulate the per-thread span stacks.
    let jsonl = sink.to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        validate_json(line).unwrap_or_else(|e| panic!("JSONL line is not JSON: {e}\n{line}"));
    }
    assert_balanced(&jsonl);

    // All eight span kinds fire across independence + matrix + fd batch
    // + the incremental pipeline.
    for kind in SpanKind::ALL {
        assert!(
            jsonl.contains(kind.name()),
            "no {} span in the capture",
            kind.name()
        );
    }
}

#[test]
fn summary_sink_totals_match_run_metrics() {
    let sink = Arc::new(SummarySink::new());
    let analyzer = traced_analyzer(sink.clone());
    let (_, totals) = drive_example(&analyzer, &TraceHandle::new(sink.clone()));
    let summary = sink.summary();

    // Each Budget counter bump emits exactly one event, so the sink's
    // tallies and the engine's own metrics must agree exactly.
    assert_eq!(
        summary.event_count(EventKind::StateInterned),
        totals.states_interned,
        "states_interned"
    );
    assert_eq!(
        summary.event_count(EventKind::FrontierPush),
        totals.frontier_pushes,
        "frontier_pushes"
    );
    assert_eq!(
        summary.event_count(EventKind::MemoMiss),
        totals.memo_entries,
        "memo_entries"
    );
    assert_eq!(
        summary.event_count(EventKind::MemoHit),
        totals.memo_hits,
        "memo_hits"
    );
    assert_eq!(
        summary.event_count(EventKind::GuardIntersection),
        totals.guard_intersections,
        "guard_intersections"
    );
    // No budget ran out in an unlimited run.
    assert_eq!(summary.event_count(EventKind::Exhausted), 0);
    // Spans closed: every kind that ran has wall time attributed.
    for kind in [SpanKind::Compile, SpanKind::IcSearch, SpanKind::MatrixCell] {
        assert!(summary.span(kind).count > 0, "{} never ran", kind.name());
    }
}

#[test]
fn tracing_is_observation_only() {
    let sink = Arc::new(ChromeTraceSink::new());
    let (traced_verdict, traced_totals) =
        drive_example(&traced_analyzer(sink.clone()), &TraceHandle::new(sink));
    let (plain_verdict, plain_totals) = drive_example(&plain_analyzer(), &TraceHandle::default());
    assert_eq!(traced_verdict, plain_verdict);
    assert_eq!(traced_totals.states_interned, plain_totals.states_interned);
    assert_eq!(traced_totals.frontier_pushes, plain_totals.frontier_pushes);
    assert_eq!(traced_totals.memo_entries, plain_totals.memo_entries);
    assert_eq!(traced_totals.memo_hits, plain_totals.memo_hits);
    assert_eq!(
        traced_totals.guard_intersections,
        plain_totals.guard_intersections
    );
}
