//! Resource governance: budgets and cancellation never produce a *wrong*
//! verdict — only a graceful `Unknown { exhausted }` — and partial results
//! (matrix cells, batch outcomes) are always complete and well-formed.

use std::time::Duration;

use regtree::prelude::*;
use regtree_gen as gen;

/// A starved run (1-state budget) must either agree with the unlimited run
/// or report `Unknown { exhausted: Some(States) }` — never flip a verdict.
#[test]
fn one_state_budget_is_unknown_never_wrong() {
    let a = gen::exam_alphabet();
    let schema = gen::exam_schema(&a);
    let class_u = gen::update_class_u(&a);
    let fds = [gen::fd1(&a), gen::fd3(&a), gen::fd5(&a)];

    let unlimited = Analyzer::builder().schema(schema.clone()).build();
    let starved = Analyzer::builder()
        .schema(schema)
        .limits(RunLimits::default().with_max_states(1))
        .build();

    for fd in &fds {
        let full = unlimited.independence(fd, &class_u);
        let cut = starved.independence(fd, &class_u);
        match &cut.verdict {
            // If the starved run still decided, it must agree.
            Verdict::Independent => {
                assert!(
                    full.verdict.is_independent(),
                    "budgeted run said Independent where the unlimited run did not"
                );
            }
            Verdict::Unknown {
                exhausted, witness, ..
            } => {
                if let Some(r) = exhausted {
                    assert_eq!(*r, Resource::States, "wrong resource reported");
                    // An exhausted run must not fabricate a witness.
                    assert!(witness.is_none(), "exhausted run produced a witness");
                } else {
                    // A genuine (non-exhausted) Unknown must agree with the
                    // unlimited run's verdict.
                    assert!(!full.verdict.is_independent());
                }
            }
            other => panic!("unexpected verdict: {other:?}"),
        }
        // Metrics are populated even on a cut-short run (the counter
        // records the entry that crossed the cap, so it may read cap + 1).
        assert!(cut.metrics.states_interned >= 1);
    }
}

/// A pre-cancelled token: the 3×3 matrix still returns all nine cells, every
/// one `Unknown { exhausted: Some(Cancelled) }`, without panicking.
#[test]
fn cancelled_matrix_returns_partial_cells_without_panic() {
    let a = gen::exam_alphabet();
    let fd1 = gen::fd1(&a);
    let fd3 = gen::fd3(&a);
    let fd5 = gen::fd5(&a);
    let class_u = gen::update_class_u(&a);
    let class_level =
        UpdateClass::new(parse_corexpath(&a, "/session/candidate/level").expect("parses"))
            .expect("leaf");
    let class_rank =
        UpdateClass::new(parse_corexpath(&a, "/session/candidate/exam/rank").expect("parses"))
            .expect("leaf");

    let token = CancelToken::new();
    token.cancel();
    let analyzer = Analyzer::builder().cancel_token(token).build();
    let matrix = analyzer.matrix(
        &[("fd1", &fd1), ("fd3", &fd3), ("fd5", &fd5)],
        &[
            ("u", &class_u),
            ("level", &class_level),
            ("rank", &class_rank),
        ],
    );

    assert_eq!(
        matrix.cells.len(),
        9,
        "all cells present despite cancellation"
    );
    assert_eq!(matrix.independent_count(), 0);
    assert_eq!(matrix.exhausted_count(), 9);
    assert_eq!(
        matrix.recheck_count(),
        9,
        "cancelled cells must be rechecked"
    );
    for cell in &matrix.cells {
        assert_eq!(cell.verdict.exhausted(), Some(Resource::Cancelled));
    }
    // Every class reports every FD as needing a recheck.
    for class in 0..3 {
        assert_eq!(matrix.fds_to_recheck(class), vec![0, 1, 2]);
    }
}

/// Cancelling mid-flight from another thread: the matrix returns with every
/// cell present and no wrong `Independent` verdicts relative to a clean run.
#[test]
fn cancellation_midway_leaves_no_wrong_verdicts() {
    let a = gen::exam_alphabet();
    let schema = gen::exam_schema(&a);
    let fd1 = gen::fd1(&a);
    let fd3 = gen::fd3(&a);
    let class_u = gen::update_class_u(&a);
    let class_level =
        UpdateClass::new(parse_corexpath(&a, "/session/candidate/level").expect("parses"))
            .expect("leaf");

    let clean = Analyzer::builder().schema(schema.clone()).build().matrix(
        &[("fd1", &fd1), ("fd3", &fd3)],
        &[("u", &class_u), ("level", &class_level)],
    );

    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(1));
            token.cancel();
        })
    };
    let governed = Analyzer::builder()
        .schema(schema)
        .cancel_token(token)
        .build()
        .matrix(
            &[("fd1", &fd1), ("fd3", &fd3)],
            &[("u", &class_u), ("level", &class_level)],
        );
    canceller.join().expect("canceller thread");

    assert_eq!(governed.cells.len(), clean.cells.len());
    for (g, c) in governed.cells.iter().zip(&clean.cells) {
        if g.verdict.is_independent() {
            assert!(
                c.verdict.is_independent(),
                "cancelled run proved independence the clean run did not"
            );
        }
    }
}

/// An elapsed deadline reports `Resource::Deadline` on a single check.
#[test]
fn zero_deadline_reports_deadline_exhaustion() {
    let a = gen::exam_alphabet();
    let fd3 = gen::fd3(&a);
    let class_u = gen::update_class_u(&a);
    let analyzer = Analyzer::builder()
        .limits(RunLimits::default().with_deadline(Duration::ZERO))
        .build();
    let analysis = analyzer.independence(&fd3, &class_u);
    match analysis.verdict.exhausted() {
        Some(r) => assert_eq!(r, Resource::Deadline),
        // A degenerate instance may still decide before the first poll; it
        // must then agree with the unlimited engine.
        None => assert_eq!(
            analysis.verdict.is_independent(),
            Analyzer::builder()
                .build()
                .independence(&fd3, &class_u)
                .verdict
                .is_independent()
        ),
    }
}

/// Budgeted FD batch checking: a 0-memo budget yields `Unknown` outcomes
/// (never a wrong Satisfied/Violated) and still reports merged metrics.
#[test]
fn starved_fd_batch_is_unknown_with_metrics() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let fds = [gen::fd1(&a), gen::fd3(&a)];

    let clean = Analyzer::builder().build().check_fds(&fds, &doc);
    let starved = Analyzer::builder()
        .limits(RunLimits::default().with_max_memo(0))
        .build()
        .check_fds(&fds, &doc);

    assert_eq!(starved.outcomes.len(), fds.len());
    for (s, c) in starved.outcomes.iter().zip(&clean.outcomes) {
        match s {
            FdOutcome::Unknown { exhausted, .. } => {
                assert_eq!(*exhausted, Resource::Memo);
            }
            // If a check finished within budget it must agree.
            other => assert_eq!(other.is_satisfied(), c.is_satisfied()),
        }
    }
    assert!(!starved.all_satisfied(), "Unknown counts as not-satisfied");
}
