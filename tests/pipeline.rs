//! Cross-crate pipelines: XML text → documents → schemas → CoreXPath update
//! classes → the independence criterion → executable updates, exercising the
//! public API exactly as a downstream user would.

use rand::SeedableRng;
use regtree::prelude::*;

const SCHEMA: &str = "\
root: inventory
inventory: warehouse*
warehouse: @site pallet*
pallet: @id product qty note?
product: #text
qty: #text
note: #text
";

fn doc_src(pallets: &[(&str, &str, &str)]) -> String {
    let body: String = pallets
        .iter()
        .map(|(id, product, qty)| {
            format!("<pallet id=\"{id}\"><product>{product}</product><qty>{qty}</qty></pallet>")
        })
        .collect();
    format!("<inventory><warehouse site=\"W1\">{body}</warehouse></inventory>")
}

#[test]
fn full_pipeline_from_text_to_verdicts() {
    let a = Alphabet::new();
    let schema = Schema::parse(&a, SCHEMA).expect("schema parses");
    let doc = parse_document(
        &a,
        &doc_src(&[
            ("p1", "widget", "5"),
            ("p2", "widget", "5"),
            ("p3", "gadget", "9"),
        ]),
    )
    .expect("doc parses");
    schema.validate(&doc).expect("valid");

    // FD from the path formalism: same product ⇒ same qty per warehouse.
    let fd = PathFd::parse(&a, "/inventory/warehouse : pallet/product -> pallet/qty")
        .expect("parses")
        .to_fd(&a)
        .expect("translates");
    assert!(satisfies(&fd, &doc));

    // Update classes from CoreXPath.
    let annotate =
        UpdateClass::new(parse_corexpath(&a, "/inventory/warehouse/pallet/note").expect("parses"))
            .expect("leaf");
    let requantify =
        UpdateClass::new(parse_corexpath(&a, "/inventory/warehouse/pallet/qty").expect("parses"))
            .expect("leaf");

    let analyzer = Analyzer::builder().schema(schema.clone()).build();
    assert!(analyzer
        .independence(&fd, &annotate)
        .verdict
        .is_independent());
    assert!(!analyzer
        .independence(&fd, &requantify)
        .verdict
        .is_independent());

    // Execute an annotate update: the FD survives, as promised.
    // (note? is optional in the schema but absent from the document, so the
    // class selects nothing — grow the document first.)
    let mut with_notes = doc.clone();
    let inventory = with_notes.children(with_notes.root())[0];
    let wh = with_notes.children(inventory)[0];
    let pallet = with_notes.children(wh)[1]; // after @site
    let insert_at = with_notes.children(pallet).len();
    regtree::xml::insert_child(
        &mut with_notes,
        pallet,
        insert_at,
        &TreeSpec::elem_named(&a, "note", vec![TreeSpec::text("fragile")]),
    )
    .expect("insert");
    schema.validate(&with_notes).expect("still valid");
    let update = Update::new(annotate, UpdateOp::SetText("checked".into()));
    let after = update.apply_cloned(&with_notes).expect("applies");
    assert!(satisfies(&fd, &after));

    // A requantify update *can* break it — witness by doing so.
    let skew = Update::new(requantify, UpdateOp::SetText("7".into()));
    let mut skewed = skew.apply_cloned(&doc).expect("applies");
    // All equal: still fine. Now nudge one qty only.
    assert!(satisfies(&fd, &skewed));
    let wh = skewed.children(skewed.root())[0];
    let first_qty = skewed
        .descendants(wh)
        .into_iter()
        .find(|&n| skewed.label_name(n).as_ref() == "qty")
        .expect("qty exists");
    let text = skewed.children(first_qty)[0];
    regtree::xml::set_value(&mut skewed, text, "8").expect("set");
    assert!(!satisfies(&fd, &skewed));
}

#[test]
fn witness_documents_guide_schema_refinement() {
    // A workflow the criterion enables: when the verdict is Unknown, the
    // witness shows the interaction; a tighter schema can rule it out.
    let a = Alphabet::new();
    let fd = FdBuilder::new(a.clone())
        .context("db")
        .condition("rec/key")
        .target("rec/val")
        .build()
        .expect("builds");
    // Updates touch 'scratch' nodes — but without a schema a 'scratch' node
    // could *contain* a whole rec/key/val region? No: scratch subtrees can
    // not be reached by the FD pattern through a scratch label… unless the
    // pattern allows it. Use a wildcard-ish FD to create the interaction:
    let loose_fd = {
        let mut t = Template::new(a.clone());
        let c = t.add_child_str(t.root(), "db").expect("proper");
        let k = t.add_child_str(c, "_*/key").expect("proper");
        let v = t.add_child_str(c, "_*/val").expect("proper");
        let p = RegularTreePattern::new(t, vec![k, v]).expect("valid");
        regtree::core::fd::Fd::with_default_equality(p, c).expect("fd")
    };
    let class = UpdateClass::new(parse_corexpath(&a, "/db/scratch").expect("ok")).expect("leaf");

    // The loose FD can reach keys *inside* scratch areas: Unknown.
    let unschemad = Analyzer::builder().build();
    let loose = unschemad.independence(&loose_fd, &class);
    assert!(!loose.verdict.is_independent());
    if let Verdict::Unknown {
        witness: Some(w), ..
    } = &loose.verdict
    {
        assert!(regtree::core::in_language_naive(&loose_fd, &class, w));
    }

    // A schema confining keys/vals to recs restores independence.
    let schema = Schema::parse(
        &a,
        "root: db\ndb: rec* scratch*\nrec: key val\nkey: #text\nval: #text\nscratch: pad*\npad: EMPTY\n",
    )
    .expect("parses");
    let tight = Analyzer::builder()
        .schema(schema)
        .build()
        .independence(&loose_fd, &class);
    assert!(tight.verdict.is_independent());

    // The strict (path-shaped) FD never interacted in the first place.
    assert!(unschemad.independence(&fd, &class).verdict.is_independent());
}

#[test]
fn randomized_cross_engine_agreement_on_schema_docs() {
    // Random schema-valid documents: the compiled pattern automata agree
    // with the evaluator, and satisfaction is stable under serialization.
    let a = Alphabet::new();
    let schema = Schema::parse(&a, SCHEMA).expect("parses");
    let fd = PathFd::parse(&a, "/inventory/warehouse : pallet/product -> pallet/qty")
        .expect("parses")
        .to_fd(&a)
        .expect("translates");
    let mut rng = rand::rngs::SmallRng::seed_from_u64(31337);
    for _ in 0..12 {
        let doc = regtree_gen::random_document(&schema, 5, &mut rng);
        schema.validate(&doc).expect("generator respects schema");
        // Automaton ≡ evaluator on the FD pattern.
        let auto = compile_pattern(fd.pattern(), false);
        let has = !fd.pattern().mappings(&doc).is_empty();
        assert_eq!(auto.accepts(&doc), has);
        // Serialization round trip preserves satisfaction.
        let xml = to_xml(&doc);
        let back = parse_document(&a, &xml).expect("reparses");
        assert_eq!(satisfies(&fd, &doc), satisfies(&fd, &back));
    }
}

#[test]
fn update_stream_with_incremental_checker() {
    let a = Alphabet::new();
    let schema = Schema::parse(&a, SCHEMA).expect("parses");
    let mut doc = parse_document(
        &a,
        &doc_src(&[("p1", "widget", "5"), ("p2", "widget", "5")]),
    )
    .expect("parses");
    let fd = PathFd::parse(&a, "/inventory/warehouse : pallet/product -> pallet/qty")
        .expect("parses")
        .to_fd(&a)
        .expect("translates");
    let mut checker = RelevantSetChecker::new(&fd, &doc);
    assert!(checker.satisfied());

    // A stream of qty rewrites that keep values uniform: stays satisfied.
    for v in ["6", "7", "8"] {
        let class =
            UpdateClass::new(parse_corexpath(&a, "/inventory/warehouse/pallet/qty").expect("ok"))
                .expect("leaf");
        let update = Update::new(class, UpdateOp::SetText(v.into()));
        assert!(checker.recheck(&fd, &update, &mut doc).expect("applies"));
    }
    schema.validate(&doc).expect("still valid");
    assert!(to_xml(&doc).contains("<qty>8</qty>"));
}
