//! E8 (DESIGN.md): Proposition 2 — soundness of the independence criterion,
//! attacked randomly from two sides:
//!
//! 1. **Automaton correctness**: the IC product automaton recognizes exactly
//!    the language `L` of Definition 6 — cross-checked against a direct
//!    (mapping-enumeration) implementation on random documents;
//! 2. **End-to-end soundness**: whenever the criterion answers
//!    `Independent`, no random label-preserving update of the class ever
//!    breaks the FD on random documents.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regtree::prelude::*;
use regtree_core::{build_ic_automaton, in_language_naive};

const LABELS: [&str; 3] = ["a", "b", "c"];

fn random_doc(a: &Alphabet, rng: &mut SmallRng, budget: usize) -> Document {
    fn spec(a: &Alphabet, rng: &mut SmallRng, budget: usize, depth: usize) -> TreeSpec {
        let label = a.intern(LABELS[rng.gen_range(0..LABELS.len())]);
        if depth > 4 || budget <= 1 || rng.gen_bool(0.3) {
            if rng.gen_bool(0.2) {
                return TreeSpec::text("v");
            }
            return TreeSpec::elem(label, vec![]);
        }
        let n = rng.gen_range(1..=3usize);
        let children = (0..n)
            .map(|_| spec(a, rng, budget / n, depth + 1))
            .collect();
        TreeSpec::elem(label, children)
    }
    let tops = rng.gen_range(1..=2usize);
    let specs: Vec<TreeSpec> = (0..tops).map(|_| spec(a, rng, budget, 0)).collect();
    regtree::xml::document_from_specs(a.clone(), &specs)
}

/// A random structural mutation (keeps well-formedness, may move the
/// document into or out of `L`).
fn mutate(a: &Alphabet, doc: &mut Document, rng: &mut SmallRng) {
    let nodes: Vec<NodeId> = doc.all_nodes();
    let n = nodes[rng.gen_range(0..nodes.len())];
    let label = a.intern(LABELS[rng.gen_range(0..LABELS.len())]);
    match rng.gen_range(0..3) {
        0 if doc.kind(n) == LabelKind::Element => {
            let _ = regtree::xml::insert_child(doc, n, 0, &TreeSpec::elem(label, vec![]));
        }
        1 if n != doc.root() => {
            let _ = regtree::xml::delete_subtree(doc, n);
        }
        _ => {
            let root = doc.root();
            let len = doc.children(root).len();
            let _ = regtree::xml::insert_child(doc, root, len, &TreeSpec::elem(label, vec![]));
        }
    }
}

fn random_edge(rng: &mut SmallRng) -> String {
    let atoms = ["a", "b", "c", "a/b", "(a|b)", "_", "b/c"];
    atoms[rng.gen_range(0..atoms.len())].to_string()
}

/// A random FD over a small template (1–2 conditions).
fn random_fd(a: &Alphabet, rng: &mut SmallRng) -> Fd {
    let mut t = Template::new(a.clone());
    let ctx = t.add_child_str(t.root(), &random_edge(rng)).unwrap();
    let mut selected = Vec::new();
    let n_conditions = rng.gen_range(1..=2usize);
    for _ in 0..n_conditions {
        selected.push(t.add_child_str(ctx, &random_edge(rng)).unwrap());
    }
    selected.push(t.add_child_str(ctx, &random_edge(rng)).unwrap());
    let pattern = RegularTreePattern::new(t, selected).unwrap();
    Fd::with_default_equality(pattern, ctx).unwrap()
}

/// A random monadic update class with a leaf selection.
fn random_class(a: &Alphabet, rng: &mut SmallRng) -> UpdateClass {
    let mut t = Template::new(a.clone());
    let mut cur = t.root();
    let hops = rng.gen_range(1..=2usize);
    for _ in 0..hops {
        cur = t.add_child_str(cur, &random_edge(rng)).unwrap();
    }
    // Optionally a structural sibling branch before or after.
    if rng.gen_bool(0.4) {
        let parent = t.parent(cur).unwrap();
        let _ = t.add_child_str(parent, &random_edge(rng));
    }
    UpdateClass::new(RegularTreePattern::monadic(t, cur).unwrap()).unwrap()
}

#[test]
fn e8_automaton_recognizes_exactly_l() {
    let a = Alphabet::with_labels(LABELS);
    let mut rng = SmallRng::seed_from_u64(20100322);
    let mut in_l = 0usize;
    let mut out_l = 0usize;
    for round in 0..60 {
        let fd = random_fd(&a, &mut rng);
        let class = random_class(&a, &mut rng);
        let automaton = build_ic_automaton(&fd, &class);
        // Pure random documents rarely land in L; seed the battery with the
        // emptiness witness (a guaranteed member when L ≠ ∅) and random
        // mutations of it, plus fresh random documents.
        let mut docs: Vec<Document> = Vec::new();
        if let Some(w) = regtree::hedge::witness_document(&automaton, &a) {
            for _ in 0..3 {
                let mut m = w.clone();
                mutate(&a, &mut m, &mut rng);
                docs.push(m);
            }
            docs.push(w);
        }
        for _ in 0..4 {
            docs.push(random_doc(&a, &mut rng, 10));
        }
        for doc in docs {
            let direct = in_language_naive(&fd, &class, &doc);
            let by_automaton = automaton.accepts(&doc);
            assert_eq!(
                by_automaton,
                direct,
                "round {round}: automaton disagrees with Definition 6 on\n{}",
                to_xml(&doc)
            );
            if direct {
                in_l += 1;
            } else {
                out_l += 1;
            }
        }
    }
    // The battery must exercise both outcomes to mean anything.
    assert!(in_l > 10, "too few positive cases ({in_l})");
    assert!(out_l > 10, "too few negative cases ({out_l})");
}

#[test]
fn e8_independent_verdicts_survive_random_updates() {
    let a = Alphabet::with_labels(LABELS);
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut independents = 0usize;
    let mut checked_updates = 0usize;
    let analyzer = Analyzer::builder().build();
    for _ in 0..80 {
        let fd = random_fd(&a, &mut rng);
        let class = random_class(&a, &mut rng);
        if !analyzer.independence(&fd, &class).verdict.is_independent() {
            continue;
        }
        independents += 1;
        for _ in 0..8 {
            let doc = random_doc(&a, &mut rng, 12);
            if !satisfies(&fd, &doc) {
                continue;
            }
            // A random label-preserving update.
            let op = match rng.gen_range(0..4) {
                0 => UpdateOp::SetText("zz".into()),
                1 => UpdateOp::AppendChild(TreeSpec::elem(
                    a.intern(LABELS[rng.gen_range(0..LABELS.len())]),
                    vec![TreeSpec::text("new")],
                )),
                2 => UpdateOp::PrependChild(TreeSpec::elem(
                    a.intern(LABELS[rng.gen_range(0..LABELS.len())]),
                    vec![],
                )),
                _ => UpdateOp::Delete,
            };
            let update = Update::new(class.clone(), op);
            let after = update.apply_cloned(&doc).expect("applies");
            checked_updates += 1;
            assert!(
                satisfies(&fd, &after),
                "IC said independent, but an update broke the FD.\nbefore: {}\nafter: {}",
                to_xml(&doc),
                to_xml(&after)
            );
        }
    }
    assert!(
        independents >= 5,
        "battery produced {independents} independent pairs"
    );
    assert!(
        checked_updates >= 20,
        "only {checked_updates} updates exercised"
    );
}

#[test]
fn e8_unknown_witnesses_are_genuine_members_of_l() {
    let a = Alphabet::with_labels(LABELS);
    let mut rng = SmallRng::seed_from_u64(77);
    let mut witnesses = 0usize;
    let analyzer = Analyzer::builder().build();
    for _ in 0..40 {
        let fd = random_fd(&a, &mut rng);
        let class = random_class(&a, &mut rng);
        let analysis = analyzer.independence(&fd, &class);
        if let Verdict::Unknown {
            witness: Some(w), ..
        } = &analysis.verdict
        {
            witnesses += 1;
            assert!(
                in_language_naive(&fd, &class, w),
                "extracted witness is not in L:\n{}",
                to_xml(w)
            );
        }
    }
    assert!(witnesses >= 5, "only {witnesses} witnesses produced");
}

#[test]
fn e8_schema_product_respects_validity() {
    // With a schema, extracted witnesses must also be schema-valid.
    let a = Alphabet::with_labels(LABELS);
    let schema = Schema::parse(&a, "root: a+\na: (b|c)*\nb: c? #text?\nc: EMPTY\n").unwrap();
    let mut rng = SmallRng::seed_from_u64(123);
    let mut found = 0;
    let analyzer = Analyzer::builder().schema(schema.clone()).build();
    for _ in 0..120 {
        let fd = random_fd(&a, &mut rng);
        let class = random_class(&a, &mut rng);
        let analysis = analyzer.independence(&fd, &class);
        if let Verdict::Unknown {
            witness: Some(w), ..
        } = &analysis.verdict
        {
            found += 1;
            assert!(schema.validate(w).is_ok(), "witness not schema-valid");
            assert!(in_language_naive(&fd, &class, w), "witness not in L");
        }
    }
    assert!(found >= 3, "only {found} schema-constrained witnesses");
}
