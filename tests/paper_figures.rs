//! E1–E3 (DESIGN.md): Figures 1–3 of the paper as executable assertions.
//!
//! The paper states exact cardinalities for the Figure 2 evaluations on the
//! Figure 1 document (“four pairs selected by R1 … two pairs selected by
//! R2”) and the order-sensitivity of Figure 3 (R3 nonempty, R4 empty).

use regtree::prelude::*;
use regtree_gen as gen;

#[test]
fn e1_figure1_document_shape() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    doc.check_well_formed().expect("well-formed");
    gen::exam_schema(&a).validate(&doc).expect("schema-valid");

    let stats = doc.stats();
    // One session, two candidates, two exams each.
    assert_eq!(stats.attributes, 2 + 4, "2 @IDN + 4 @date");
    let session = doc.children(doc.root())[0];
    assert_eq!(doc.label_name(session).as_ref(), "session");
    let candidates = doc.children(session);
    assert_eq!(candidates.len(), 2);
    // Candidate 78 has toBePassed; candidate 99 has firstJob-Year.
    let kids78: Vec<String> = doc
        .children(candidates[0])
        .iter()
        .map(|&c| doc.label_name(c).to_string())
        .collect();
    assert!(kids78.contains(&"toBePassed".to_string()));
    let kids99: Vec<String> = doc
        .children(candidates[1])
        .iter()
        .map(|&c| doc.label_name(c).to_string())
        .collect();
    assert!(kids99.contains(&"firstJob-Year".to_string()));
    // Serialization round trip.
    let xml = to_xml(&doc);
    let back = parse_document(&a, &xml).expect("reparses");
    assert!(value_eq(&doc, doc.root(), &back, back.root()));
}

#[test]
fn e2_figure2_r1_selects_four_pairs() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let result = gen::pattern_r1(&a).evaluate(&doc);
    assert_eq!(result.len(), 4, "the paper: four pairs selected by R1 on D");
    for pair in &result {
        let (e1, e2) = (pair[0], pair[1]);
        assert_eq!(doc.label_name(e1).as_ref(), "exam");
        assert_eq!(doc.label_name(e2).as_ref(), "exam");
        // Different candidates (condition (b) of Definition 2).
        assert_ne!(doc.parent(e1), doc.parent(e2));
        // Document order.
        assert_eq!(doc.doc_order(e1, e2), std::cmp::Ordering::Less);
    }
}

#[test]
fn e2_figure2_r2_selects_two_pairs() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let result = gen::pattern_r2(&a).evaluate(&doc);
    assert_eq!(result.len(), 2, "the paper: two pairs selected by R2 on D");
    for pair in &result {
        assert_eq!(doc.parent(pair[0]), doc.parent(pair[1]), "same candidate");
        assert_ne!(pair[0], pair[1]);
    }
}

#[test]
fn e2_compiled_automata_agree_with_evaluation() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    for pattern in [
        gen::pattern_r1(&a),
        gen::pattern_r2(&a),
        gen::pattern_r3(&a),
        gen::pattern_r4(&a),
    ] {
        let has = !pattern.evaluate(&doc).is_empty();
        let auto = compile_pattern(&pattern, false);
        assert_eq!(auto.accepts(&doc), has);
    }
}

#[test]
fn e3_figure3_order_sensitivity() {
    let a = gen::exam_alphabet();
    let doc = gen::figure1_document(&a);
    let r3 = gen::pattern_r3(&a).evaluate(&doc);
    let r4 = gen::pattern_r4(&a).evaluate(&doc);
    assert_eq!(
        r3.len(),
        2,
        "R3: level subtrees of candidates having passed at least one exam"
    );
    for t in &r3 {
        assert_eq!(doc.label_name(t[0]).as_ref(), "level");
    }
    assert!(
        r4.is_empty(),
        "R4 reverses the sibling order and must select nothing"
    );
}

#[test]
fn e2_scaled_evaluation_grows_quadratically() {
    // R1 on a session with n candidates (2 exams each) selects
    // 2·2·C(n,2)·… ordered cross-candidate pairs; sanity-check the counting
    // on a mid-size instance.
    use rand::SeedableRng;
    let a = gen::exam_alphabet();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let doc = gen::generate_session(&a, 6, 2, &mut rng);
    let pairs = gen::pattern_r1(&a).evaluate(&doc).len();
    // n=6 candidates, 2 exams each: ordered candidate pairs C(6,2)=15,
    // 2×2 exam choices each → 60.
    assert_eq!(pairs, 60);
    let same = gen::pattern_r2(&a).evaluate(&doc).len();
    // per candidate: 1 ordered in-order pair → 6.
    assert_eq!(same, 6);
}
