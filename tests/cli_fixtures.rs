//! End-to-end checks of the shipped fixtures through the library API (the
//! CLI's own argument handling is unit-tested in `regtree-cli`).

use regtree::prelude::*;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("fixture readable")
}

#[test]
fn fixture_schema_parses_and_validates_fixture_document() {
    let a = Alphabet::new();
    let schema = Schema::parse(&a, &fixture("exam.rts")).expect("schema parses");
    let doc = parse_document(&a, &fixture("session.xml")).expect("document parses");
    schema
        .validate(&doc)
        .expect("fixture document is schema-valid");
}

#[test]
fn fixture_document_matches_generated_figure1() {
    // The XML fixture and the programmatic Figure 1 builder agree
    // value-for-value.
    let a = regtree_gen::exam_alphabet();
    let from_xml = parse_document(&a, &fixture("session.xml")).expect("parses");
    let generated = regtree_gen::figure1_document(&a);
    assert!(value_eq(
        &from_xml,
        from_xml.root(),
        &generated,
        generated.root()
    ));
}

#[test]
fn fixture_readme_commands_work_via_api() {
    let a = Alphabet::new();
    let doc = parse_document(&a, &fixture("session.xml")).expect("parses");
    // fd-check command line.
    let fd = PathFd::parse(
        &a,
        "/session : candidate/exam/discipline, candidate/exam/mark -> candidate/exam/rank",
    )
    .expect("parses")
    .to_fd(&a)
    .expect("translates");
    assert!(satisfies(&fd, &doc));
    // eval command lines. Branch order must follow document order
    // (Definition 2): `level` precedes `toBePassed` under a candidate, so
    // the still-has-exams filter is written after the level test.
    let pattern = parse_corexpath(&a, "/session/candidate[level and toBePassed]").expect("parses");
    assert_eq!(pattern.evaluate(&doc).len(), 1);
    let levels = parse_corexpath(&a, "/session/candidate/level").expect("parses");
    assert_eq!(levels.evaluate(&doc).len(), 2);
    // The naive transliteration `candidate[toBePassed]/level` selects
    // nothing on this layout — the order caveat documented in
    // `regtree_pattern::corexpath`.
    let wrong_order = parse_corexpath(&a, "/session/candidate[toBePassed]/level").expect("parses");
    assert_eq!(wrong_order.evaluate(&doc).len(), 0);
    // independence command line.
    let fd2 = PathFd::parse(
        &a,
        "/session : candidate/exam/discipline -> candidate/exam/rank",
    )
    .expect("parses")
    .to_fd(&a)
    .expect("translates");
    let class = UpdateClass::new(parse_corexpath(&a, "/session/candidate/level").expect("parses"))
        .expect("leaf");
    let schema = Schema::parse(&a, &fixture("exam.rts")).expect("parses");
    let analyzer = Analyzer::builder().schema(schema).build();
    assert!(analyzer.independence(&fd2, &class).verdict.is_independent());
}
