//! Differential tests for the incremental recheck pipeline.
//!
//! The [`IncrementalChecker`] carries verdicts and bucket state across
//! updates, rechecking only what a delta can have invalidated. The
//! reference is the dumbest sound baseline: after every update, serialize
//! the mutated document, reparse it from scratch, and run the full FD
//! check. On every instance the retained verdict must equal the reparsed
//! one — a single mismatch means the impact scoping reused a verdict it
//! was not entitled to.
//!
//! The same file checks the streaming ingest: [`stream_document`] must
//! produce exactly the document (and label index) that `parse_document`
//! plus [`LabelIndex::build`] produce in two passes.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use regtree::prelude::*;
use regtree_core::update_class_from_edges;
use regtree_gen as gen;
use regtree_xml::{stream_document, NullSink, VersionedDocument};

const LEVELS: &[&str] = &["A", "B", "C", "D", "E"];

/// One random executable update over the exam vocabulary. The pool mixes
/// edits that cannot reach the FDs (level/firstJob-Year churn), edits
/// engineered to violate them (rank rewrites), structural edits
/// (exam deletion, subtree insertion), context-killing deletions
/// (candidate and whole-session removal, which delete the FDs' context
/// images themselves — the carried-verdict trap for a previously
/// violated FD), and a custom-op update that forces the opaque path.
fn random_update(a: &Alphabet, rng: &mut SmallRng) -> Update {
    let edges = |paths: &[&str]| update_class_from_edges(a, paths).expect("exam paths parse");
    let first_only = |op: UpdateOp, rng: &mut SmallRng| {
        if rng.gen_bool(0.5) {
            UpdateOp::FirstOnly(Box::new(op))
        } else {
            op
        }
    };
    match rng.gen_range(0..8u8) {
        0 => Update::new(
            edges(&["session/candidate/level"]),
            UpdateOp::SetText(LEVELS[rng.gen_range(0..LEVELS.len())].to_string()),
        ),
        1 => {
            let op = UpdateOp::SetText(rng.gen_range(1..4u32).to_string());
            Update::new(edges(&["session/candidate/exam/rank"]), first_only(op, rng))
        }
        2 => Update::new(
            edges(&["session/candidate/exam"]),
            first_only(UpdateOp::Delete, rng),
        ),
        3 => {
            let labels: Vec<Symbol> = a
                .symbols()
                .into_iter()
                .filter(|&s| s != Alphabet::ROOT)
                .collect();
            let spec = gen::random_spec(a, &labels, rng.gen_range(1..5usize), rng);
            Update::new(
                edges(&["session/candidate"]),
                first_only(UpdateOp::AppendChild(spec), rng),
            )
        }
        4 => Update::new(
            edges(&["session/candidate/firstJob-Year"]),
            UpdateOp::SetText("2011".to_string()),
        ),
        // Deletes fd2's context images (session/candidate) outright.
        5 => Update::new(
            edges(&["session/candidate"]),
            first_only(UpdateOp::Delete, rng),
        ),
        // Deletes every FD's context region wholesale: any verdict that
        // hinged on the dead contexts must be re-derived, not carried.
        6 => Update::new(edges(&["session"]), UpdateOp::Delete),
        _ => gen::update_q1(a),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// Incremental verdicts equal reparse-and-recheck verdicts on random
    /// documents × random update streams.
    #[test]
    fn incremental_recheck_matches_reparse(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = gen::exam_alphabet();
        let doc = gen::generate_session(
            &a,
            rng.gen_range(2..6usize),
            rng.gen_range(1..4usize),
            &mut rng,
        );
        let fds = vec![gen::fd1(&a), gen::fd2(&a), gen::fd4(&a)];
        let mut vdoc = VersionedDocument::new(doc);
        let mut checker = IncrementalChecker::new(fds.clone(), &vdoc);
        for step in 0..3 {
            let update = random_update(&a, &mut rng);
            let report = checker
                .apply_and_recheck(&mut vdoc, &update)
                .expect("pool updates never fail to apply");
            prop_assert_eq!(report.scopes.len(), fds.len());
            // Reparse from the serialized bytes: a fully independent
            // document, index, and check. A stream that deleted the whole
            // top-level element leaves nothing to reparse; check the live
            // (empty) document directly — every FD holds vacuously, and
            // the incremental side must agree rather than carry a stale
            // verdict past the dead contexts.
            let reparsed = if vdoc.doc().children(vdoc.doc().root()).is_empty() {
                None
            } else {
                Some(parse_document(&a, &to_xml(vdoc.doc())).expect("roundtrip"))
            };
            for (i, fd) in fds.iter().enumerate() {
                let baseline = match &reparsed {
                    Some(d) => check_fd(fd, d).is_ok(),
                    None => check_fd(fd, vdoc.doc()).is_ok(),
                };
                let incremental = match &report.outcomes[i] {
                    FdOutcome::Satisfied => true,
                    FdOutcome::Violated(_) => false,
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "ungoverned check came back {other:?}"
                        )))
                    }
                };
                prop_assert_eq!(
                    incremental,
                    baseline,
                    "fd {} diverged at step {} (scope {:?}, seed {})",
                    i, step, report.scopes[i], seed
                );
            }
        }
    }

    /// One-pass streaming ingest equals parse + index-build on random
    /// schema-valid documents (structure, values, and label index).
    #[test]
    fn streaming_ingest_matches_two_pass_parse(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = gen::exam_alphabet();
        let doc = gen::generate_session(
            &a,
            rng.gen_range(1..8usize),
            rng.gen_range(1..4usize),
            &mut rng,
        );
        let xml = to_xml(&doc);
        let parsed = parse_document(&a, &xml).expect("parse");
        let (streamed, index) =
            stream_document(&a, &xml, &mut NullSink).expect("stream");
        prop_assert_eq!(to_xml(&streamed), to_xml(&parsed));
        prop_assert_eq!(streamed.len(), parsed.len());
        prop_assert_eq!(&index, &LabelIndex::build(&parsed));
    }
}

/// The checker survives an update stream that empties whole contexts and
/// repopulates them, agreeing with reparse at every step (regression
/// anchor with a fixed seed so failures are reproducible verbatim).
#[test]
fn checker_agrees_across_delete_and_rebuild_cycles() {
    let a = gen::exam_alphabet();
    let mut rng = SmallRng::seed_from_u64(0xE0B1);
    let doc = gen::generate_session(&a, 4, 2, &mut rng);
    let fds = vec![gen::fd1(&a), gen::fd2(&a)];
    let mut vdoc = VersionedDocument::new(doc);
    let mut checker = IncrementalChecker::new(fds.clone(), &vdoc);
    let delete_exams = Update::new(
        update_class_from_edges(&a, &["session/candidate/exam"]).unwrap(),
        UpdateOp::Delete,
    );
    let rebuild = Update::new(
        update_class_from_edges(&a, &["session/candidate"]).unwrap(),
        UpdateOp::AppendChild(TreeSpec::elem_named(
            &a,
            "exam",
            vec![TreeSpec::elem_named(&a, "rank", vec![TreeSpec::text("1")])],
        )),
    );
    for update in [&delete_exams, &rebuild, &delete_exams] {
        checker
            .apply_and_recheck(&mut vdoc, update)
            .expect("applies");
        let reparsed = parse_document(&a, &to_xml(vdoc.doc())).expect("roundtrip");
        for (fd, outcome) in fds.iter().zip(checker.outcomes()) {
            assert_eq!(outcome.is_satisfied(), check_fd(fd, &reparsed).is_ok());
        }
    }
}
