//! # regtree
//!
//! A complete, from-scratch Rust implementation of
//! **“Regular tree patterns: a uniform formalism for update queries and
//! functional dependencies in XML”** (F. Gire & H. Idabal, *Updates in
//! XML*, EDBT 2010 Workshops).
//!
//! The paper proposes *regular tree patterns* — tree templates whose edges
//! carry regular expressions over XML labels — as one formalism for both
//! XML functional dependencies and classes of update queries, and derives a
//! polynomial-time sufficient criterion for an FD to be *independent* of an
//! update class (no update of the class can ever break the FD), while the
//! exact problem is PSPACE-hard.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`alphabet`] | interned label alphabets |
//! | [`automata`] | word regexes, NFAs/DFAs, inclusion, sampling |
//! | [`xml`] | the document model, XML parser/serializer, value equality, edits |
//! | [`hedge`] | bottom-up unranked tree automata, schemas, products, emptiness |
//! | [`pattern`] | regular tree patterns: evaluation & automaton compilation |
//! | [`core`] | FDs, update classes, the independence criterion, the PSPACE reduction |
//! | [`gen`] | the paper's running example and random workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use regtree::prelude::*;
//!
//! let alphabet = regtree_gen::exam_alphabet();
//! let doc = regtree_gen::figure1_document(&alphabet);
//! let fd1 = regtree_gen::fd1(&alphabet);           // discipline+mark ⇒ rank
//! assert!(satisfies(&fd1, &doc));
//!
//! // The paper's update class U: levels of candidates with exams to pass.
//! let class = regtree_gen::update_class_u(&alphabet);
//! let schema = regtree_gen::exam_schema(&alphabet);
//! let analyzer = Analyzer::builder().schema(schema).build();
//! let analysis = analyzer.independence(&fd1, &class);
//! assert!(analysis.verdict.is_independent());
//! assert!(analysis.metrics.states_interned > 0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use regtree_alphabet as alphabet;
pub use regtree_automata as automata;
pub use regtree_core as core;
pub use regtree_gen as gen;
pub use regtree_hedge as hedge;
pub use regtree_pattern as pattern;
pub use regtree_xml as xml;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use regtree_alphabet::{Alphabet, LabelKind, Symbol};
    pub use regtree_automata::{parse_regex, Dfa, LangSampler, Nfa, Regex};
    pub use regtree_core::{
        build_reduction, check_fd, expressible_in_path_formalism, parse_fd, revalidate_full,
        revalidate_full_many, satisfies, subsumes, Analyzer, AnalyzerBuilder, Budget, CancelToken,
        CellProvenance, ChromeTraceSink, DroppedFd, EqualityType, Error, EventKind, Fd,
        FdBatchReport, FdBuilder, FdOutcome, FdSet, Implication, IncrementalChecker,
        IndependenceMatrix, Minimization, NullTracer, PathFd, RecheckReport, RecheckScope,
        RelevantSetChecker, Resource, RunLimits, RunMetrics, SpanId, SpanKind, SummarySink,
        TraceFormat, TraceHandle, TraceSummary, Tracer, Update, UpdateClass, UpdateOp, Verdict,
    };
    pub use regtree_hedge::{HedgeAutomaton, Schema};
    pub use regtree_pattern::{
        compile_pattern, evaluate_many, parse_corexpath, parse_pattern, CompiledPattern,
        RegularTreePattern, Template, TemplateNodeId,
    };
    pub use regtree_xml::{
        parse_document, to_xml, value_eq, value_hash, Document, LabelIndex, NodeId, TreeSpec,
    };
}
